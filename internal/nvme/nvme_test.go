package nvme

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestCommandEncodeDecodeRoundTrip(t *testing.T) {
	c := Command{
		Opcode: OpRead,
		CID:    0x1234,
		NSID:   3,
		PRP1:   0xDEAD_BEEF_000,
		SLBA:   0x1_0000_0042,
		NLB:    0,
		Urgent: true,
	}
	got, err := Decode(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("round trip: %+v != %+v", got, c)
	}
	if got.Blocks() != 1 {
		t.Fatalf("blocks = %d", got.Blocks())
	}
}

func TestCommandRoundTripProperty(t *testing.T) {
	f := func(op uint8, cid uint16, nsid uint32, prp, slba uint64, nlb uint16, urg bool) bool {
		c := Command{
			Opcode: []Opcode{OpFlush, OpWrite, OpRead}[op%3],
			CID:    cid, NSID: nsid, PRP1: prp, SLBA: slba, NLB: nlb, Urgent: urg,
		}
		got, err := Decode(c.Encode())
		return err == nil && got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsBadOpcode(t *testing.T) {
	var b [CommandSize]byte
	b[0] = 0x7F
	if _, err := Decode(b); !errors.Is(err, ErrBadCommand) {
		t.Fatalf("err = %v", err)
	}
}

func TestOpcodeString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" || OpFlush.String() != "flush" {
		t.Fatal("opcode strings")
	}
	if Opcode(0x99).String() != "op0x99" {
		t.Fatalf("unknown opcode: %s", Opcode(0x99))
	}
}

func TestQueuePairSubmitPop(t *testing.T) {
	q := NewQueuePair(1, 4)
	if q.Depth() != 4 {
		t.Fatal("depth")
	}
	for i := 0; i < 3; i++ {
		if err := q.Submit(Command{Opcode: OpRead, CID: uint16(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !q.SQFull() {
		t.Fatal("queue should be full at depth-1 entries")
	}
	if err := q.Submit(Command{Opcode: OpRead}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow err = %v", err)
	}
	if q.SQOutstanding() != 3 {
		t.Fatalf("outstanding = %d", q.SQOutstanding())
	}
	for i := 0; i < 3; i++ {
		c, ok := q.PopSQ()
		if !ok || c.CID != uint16(i) {
			t.Fatalf("pop %d: %+v %v", i, c, ok)
		}
	}
	if _, ok := q.PopSQ(); ok {
		t.Fatal("pop of empty queue succeeded")
	}
	if q.Submitted() != 3 {
		t.Fatalf("submitted = %d", q.Submitted())
	}
}

func TestQueueDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewQueuePair(0, 1)
}

func TestCompletionPhaseWrap(t *testing.T) {
	q := NewQueuePair(2, 4)
	// Fill one full CQ lap.
	for i := 0; i < 4; i++ {
		_ = q.Submit(Command{Opcode: OpRead, CID: uint16(i)})
		_, _ = q.PopSQ()
		q.PostCompletion(Completion{CID: uint16(i), Status: StatusSuccess})
		cp, ok := q.PollCQ()
		if !ok || cp.CID != uint16(i) || !cp.OK() {
			t.Fatalf("poll %d: %+v %v", i, cp, ok)
		}
		q.ConsumeCQ()
	}
	// After wrap the phase flips; a stale entry must not be seen.
	if _, ok := q.PollCQ(); ok {
		t.Fatal("stale completion visible after phase wrap")
	}
	// Second lap still works.
	_ = q.Submit(Command{Opcode: OpRead, CID: 99})
	_, _ = q.PopSQ()
	q.PostCompletion(Completion{CID: 99})
	cp, ok := q.PollCQ()
	if !ok || cp.CID != 99 {
		t.Fatalf("second lap: %+v %v", cp, ok)
	}
}

func TestPollEmptyCQ(t *testing.T) {
	q := NewQueuePair(1, 8)
	if _, ok := q.PollCQ(); ok {
		t.Fatal("empty CQ polled an entry")
	}
}

func TestCompletionCarriesSQHead(t *testing.T) {
	q := NewQueuePair(7, 8)
	_ = q.Submit(Command{Opcode: OpWrite, CID: 5})
	_, _ = q.PopSQ()
	q.PostCompletion(Completion{CID: 5})
	cp, _ := q.PollCQ()
	if cp.SQID != 7 {
		t.Fatalf("sqid = %d", cp.SQID)
	}
	if cp.SQHead != 1 {
		t.Fatalf("sqhead = %d", cp.SQHead)
	}
}

// Property: any interleaving of submit/pop/complete/consume keeps counts
// consistent and never loses or duplicates a command.
func TestQueuePairFIFOProperty(t *testing.T) {
	f := func(ops []byte) bool {
		q := NewQueuePair(1, 8)
		var nextCID uint16
		var inFlight []uint16 // popped by device, completion not yet consumed
		var wantNext uint16   // next CID the host must consume
		for _, op := range ops {
			switch op % 3 {
			case 0: // submit
				if err := q.Submit(Command{Opcode: OpRead, CID: nextCID}); err == nil {
					nextCID++
				}
			case 1: // device: pop + complete
				if len(inFlight) >= q.Depth()-1 {
					break // host guarantees CQ space for outstanding cmds
				}
				if c, ok := q.PopSQ(); ok {
					q.PostCompletion(Completion{CID: c.CID})
					inFlight = append(inFlight, c.CID)
				}
			case 2: // host: poll + consume
				if cp, ok := q.PollCQ(); ok {
					if cp.CID != wantNext {
						return false
					}
					wantNext++
					q.ConsumeCQ()
					inFlight = inFlight[1:]
				}
			}
		}
		return q.Completed() <= q.Submitted()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
