package nvme

import "testing"

// namedStatuses is the full status vocabulary with its expected mapping:
// display name, retry disposition, and success classification. Single
// source of truth for the exhaustive tables below — adding a status
// constant without extending this table fails TestStatusTableExhaustive.
var namedStatuses = []struct {
	status    uint16
	name      string
	retryable bool
	ok        bool
}{
	{StatusSuccess, "success", false, true},
	{StatusInternalErr, "internal-error", false, false},
	{StatusInvalidNS, "invalid-namespace", false, false},
	{StatusCmdInterrupted, "command-interrupted", true, false},
	{StatusLBARange, "lba-out-of-range", false, false},
	{StatusWriteFault, "write-fault", false, false},
	{StatusUncorrectable, "unrecovered-read", false, false},
	{StatusHostTimeout, "host-timeout", true, false},
}

// TestStatusTableExhaustive sweeps the whole 16-bit status space: every
// code outside the named table must render as unknown(...) and must not be
// retryable; every named code must map exactly per the table. This is the
// status -> error mapping contract the SMU retry policy and the OS block
// layer both build on.
func TestStatusTableExhaustive(t *testing.T) {
	named := make(map[uint16]int, len(namedStatuses))
	for i, c := range namedStatuses {
		named[c.status] = i
	}
	for s := 0; s <= 0xFFFF; s++ {
		st := uint16(s)
		i, isNamed := named[st]
		if !isNamed {
			if got := StatusString(st); len(got) < 8 || got[:8] != "unknown(" {
				t.Fatalf("StatusString(%#x) = %q, want unknown(...)", st, got)
			}
			if StatusRetryable(st) {
				t.Fatalf("unknown status %#x reported retryable", st)
			}
			continue
		}
		c := namedStatuses[i]
		if got := StatusString(st); got != c.name {
			t.Errorf("StatusString(%#x) = %q, want %q", st, got, c.name)
		}
		if got := StatusRetryable(st); got != c.retryable {
			t.Errorf("StatusRetryable(%#x) = %v, want %v", st, got, c.retryable)
		}
		if got := (Completion{Status: st}).OK(); got != c.ok {
			t.Errorf("Completion{%#x}.OK() = %v, want %v", st, got, c.ok)
		}
		if c.retryable && c.ok {
			t.Errorf("status %#x is both retryable and OK — nonsensical mapping", st)
		}
	}
}

// TestStatusNamesDistinct guards against two codes silently sharing a
// display name (log analysis keys on the rendered string).
func TestStatusNamesDistinct(t *testing.T) {
	seen := make(map[string]uint16)
	for _, c := range namedStatuses {
		if prev, dup := seen[c.name]; dup {
			t.Fatalf("statuses %#x and %#x both render as %q", prev, c.status, c.name)
		}
		seen[c.name] = c.status
	}
}

func TestStatusString(t *testing.T) {
	cases := []struct {
		status uint16
		want   string
	}{
		{StatusSuccess, "success"},
		{StatusInternalErr, "internal-error"},
		{StatusInvalidNS, "invalid-namespace"},
		{StatusCmdInterrupted, "command-interrupted"},
		{StatusLBARange, "lba-out-of-range"},
		{StatusWriteFault, "write-fault"},
		{StatusUncorrectable, "unrecovered-read"},
		{StatusHostTimeout, "host-timeout"},
		{0x42, "unknown(0x42)"},
		{0x1FF, "unknown(0x1ff)"},
	}
	for _, c := range cases {
		if got := StatusString(c.status); got != c.want {
			t.Errorf("StatusString(%#x) = %q, want %q", c.status, got, c.want)
		}
	}
}

func TestStatusRetryable(t *testing.T) {
	cases := []struct {
		status uint16
		want   bool
	}{
		{StatusSuccess, false},
		{StatusInternalErr, false},
		{StatusInvalidNS, false},
		{StatusCmdInterrupted, true},
		{StatusLBARange, false},
		{StatusWriteFault, false},
		{StatusUncorrectable, false},
		{StatusHostTimeout, true},
		{0x42, false},
	}
	for _, c := range cases {
		if got := StatusRetryable(c.status); got != c.want {
			t.Errorf("StatusRetryable(%#x) = %v, want %v", c.status, got, c.want)
		}
	}
}
