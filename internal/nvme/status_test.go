package nvme

import "testing"

func TestStatusString(t *testing.T) {
	cases := []struct {
		status uint16
		want   string
	}{
		{StatusSuccess, "success"},
		{StatusInternalErr, "internal-error"},
		{StatusInvalidNS, "invalid-namespace"},
		{StatusCmdInterrupted, "command-interrupted"},
		{StatusLBARange, "lba-out-of-range"},
		{StatusWriteFault, "write-fault"},
		{StatusUncorrectable, "unrecovered-read"},
		{StatusHostTimeout, "host-timeout"},
		{0x42, "unknown(0x42)"},
		{0x1FF, "unknown(0x1ff)"},
	}
	for _, c := range cases {
		if got := StatusString(c.status); got != c.want {
			t.Errorf("StatusString(%#x) = %q, want %q", c.status, got, c.want)
		}
	}
}

func TestStatusRetryable(t *testing.T) {
	cases := []struct {
		status uint16
		want   bool
	}{
		{StatusSuccess, false},
		{StatusInternalErr, false},
		{StatusInvalidNS, false},
		{StatusCmdInterrupted, true},
		{StatusLBARange, false},
		{StatusWriteFault, false},
		{StatusUncorrectable, false},
		{StatusHostTimeout, true},
		{0x42, false},
	}
	for _, c := range cases {
		if got := StatusRetryable(c.status); got != c.want {
			t.Errorf("StatusRetryable(%#x) = %v, want %v", c.status, got, c.want)
		}
	}
}
