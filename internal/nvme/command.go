// Package nvme implements the subset of the NVM Express protocol the paper
// relies on: 64-byte I/O commands, paired submission/completion queues with
// doorbells and the completion phase bit, and namespaces. Both the OS block
// layer (OSDP) and the SMU's NVMe host controller (HWDP) drive devices
// through this package — the SMU issues "a 4KB read without a physical
// region page (PRP) list", i.e. a single-PRP read command.
package nvme

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hwdp/internal/trace"
)

// Opcode is an NVMe I/O command opcode.
type Opcode uint8

// NVM command set opcodes (NVMe 1.3, Fig. 346).
const (
	OpFlush Opcode = 0x00
	OpWrite Opcode = 0x01
	OpRead  Opcode = 0x02
)

// String returns the opcode's NVMe mnemonic.
//
//hwdp:coldpath display helper for traces, logs and test failures; never on the steady-state miss path
func (o Opcode) String() string {
	switch o {
	case OpFlush:
		return "flush"
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	}
	return fmt.Sprintf("op%#x", uint8(o))
}

// CommandSize is the size of an NVMe submission queue entry.
const CommandSize = 64

// BlockSize is the logical block size of all simulated namespaces. The
// paper's PTEs address 4 KiB pages; with 4 KiB logical blocks a page is
// exactly one block.
const BlockSize = 4096

// Command is a decoded submission-queue entry. PRP1 carries the DMA target
// (the physical address of the destination frame); commands for one 4 KiB
// block never need PRP2 or a PRP list.
type Command struct {
	Opcode Opcode
	CID    uint16 // command identifier, echoed in the completion
	NSID   uint32 // namespace
	PRP1   uint64 // DMA address
	SLBA   uint64 // starting LBA
	NLB    uint16 // number of logical blocks, 0-based per spec
	Urgent bool   // storage-side urgent priority (Section V)
	// Tenant tags the command with the fleet tenant whose miss it serves
	// (vendor-specific DW14; zero on the default single-tenant machine).
	// Carrying it on the wire lets per-tenant I/O accounting survive the
	// submission queue's encode/decode round trip.
	Tenant uint16

	// Trace is simulator-side metadata, not wire data: the trace context
	// of the page miss this command serves (nil when tracing is disabled
	// or the command is not miss I/O). It rides alongside the 64-byte
	// entry so the device model can attribute queue-wait and media time.
	Trace *trace.Miss
}

// Blocks returns the transfer length in logical blocks.
func (c Command) Blocks() int { return int(c.NLB) + 1 }

// Encode serializes the command into its 64-byte wire format
// (spec-shaped: DW0 opcode/CID, DW1 NSID, DW6-7 PRP1, DW10-11 SLBA,
// DW12 NLB; the urgent hint uses a reserved DW13 bit and the tenant tag a
// vendor-specific DW14 field).
func (c Command) Encode() [CommandSize]byte {
	var b [CommandSize]byte
	binary.LittleEndian.PutUint32(b[0:], uint32(c.Opcode)|uint32(c.CID)<<16)
	binary.LittleEndian.PutUint32(b[4:], c.NSID)
	binary.LittleEndian.PutUint64(b[24:], c.PRP1)
	binary.LittleEndian.PutUint64(b[40:], c.SLBA)
	binary.LittleEndian.PutUint32(b[48:], uint32(c.NLB))
	if c.Urgent {
		b[52] = 1
	}
	binary.LittleEndian.PutUint16(b[56:], c.Tenant)
	return b
}

// ErrBadCommand reports a malformed submission entry.
var ErrBadCommand = errors.New("nvme: malformed command")

// Decode parses a 64-byte submission entry.
func Decode(b [CommandSize]byte) (Command, error) {
	dw0 := binary.LittleEndian.Uint32(b[0:])
	c := Command{
		Opcode: Opcode(dw0 & 0xFF),
		CID:    uint16(dw0 >> 16),
		NSID:   binary.LittleEndian.Uint32(b[4:]),
		PRP1:   binary.LittleEndian.Uint64(b[24:]),
		SLBA:   binary.LittleEndian.Uint64(b[40:]),
		NLB:    uint16(binary.LittleEndian.Uint32(b[48:])),
		Urgent: b[52] == 1,
		Tenant: binary.LittleEndian.Uint16(b[56:]),
	}
	switch c.Opcode {
	case OpFlush, OpWrite, OpRead:
	default:
		//hwdp:ignore hotalloc error construction on the malformed-command return only; commands the SMU encodes always carry a known opcode
		return Command{}, fmt.Errorf("%w: opcode %#x", ErrBadCommand, uint8(c.Opcode))
	}
	return c, nil
}

// Status codes in completion entries, encoded as (SCT << 8) | SC like the
// spec's combined status field: generic command status (SCT 0), command
// specific status (SCT 1), and media/data integrity errors (SCT 2).
// StatusHostTimeout is not a wire status — the host block layer (and the
// SMU's completion-timeout logic) synthesizes it for commands whose
// completion never arrived, after issuing an abort.
const (
	StatusSuccess        uint16 = 0x0
	StatusInternalErr    uint16 = 0x6
	StatusInvalidNS      uint16 = 0xB
	StatusCmdInterrupted uint16 = 0x21 // transient, explicitly retryable (NVMe 1.4)
	StatusLBARange       uint16 = 0x80
	StatusWriteFault     uint16 = 0x280 // media error on program
	StatusUncorrectable  uint16 = 0x281 // unrecovered read error (UECC): data lost
	StatusHostTimeout    uint16 = 0xF01 // host-synthesized: completion timed out
)

// StatusString renders a status code for logs and error messages; unknown
// codes render as unknown(0xNN) rather than an empty string.
func StatusString(s uint16) string {
	switch s {
	case StatusSuccess:
		return "success"
	case StatusInternalErr:
		return "internal-error"
	case StatusInvalidNS:
		return "invalid-namespace"
	case StatusCmdInterrupted:
		return "command-interrupted"
	case StatusLBARange:
		return "lba-out-of-range"
	case StatusWriteFault:
		return "write-fault"
	case StatusUncorrectable:
		return "unrecovered-read"
	case StatusHostTimeout:
		return "host-timeout"
	}
	return fmt.Sprintf("unknown(%#x)", s)
}

// StatusRetryable reports whether a failed command is worth resubmitting:
// transient interruptions and host-observed timeouts are; media errors
// (UECC, write fault) and command/field errors are not.
func StatusRetryable(s uint16) bool {
	return s == StatusCmdInterrupted || s == StatusHostTimeout
}

// Completion is a completion-queue entry. Phase is the phase tag the host
// compares against its expected phase to detect new entries.
type Completion struct {
	CID    uint16
	SQID   uint16
	SQHead uint16
	Status uint16
	Phase  bool
}

// OK reports whether the command succeeded.
func (cp Completion) OK() bool { return cp.Status == StatusSuccess }
