// Package kvs is a minimal NoSQL record store standing in for RocksDB in
// the evaluation (DBBench / YCSB workloads). It keeps fixed-size 4 KiB
// records in a single table file accessed exclusively through the simulated
// memory-mapped I/O path — exactly the deployment the paper targets with
// fast file mmap(): every cold Get is a demand-paging miss.
//
// Records are self-validating (key echo + FNV checksum over the payload),
// so every read through the full MMU → SMU/fault-handler → NVMe → DMA
// pipeline proves end-to-end data integrity, not just timing.
package kvs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hwdp/internal/fs"
	"hwdp/internal/kernel"
	"hwdp/internal/mmu"
	"hwdp/internal/pagetable"
)

// RecordSize is the fixed record size (the paper's workloads use 4 KB
// records).
const RecordSize = fs.PageBytes

const headerSize = 8 + 8 + 8 // key, version, checksum

// PayloadSize is the usable value bytes per record.
const PayloadSize = RecordSize - headerSize

// ErrCorrupt reports a record that failed validation after a read.
var ErrCorrupt = errors.New("kvs: corrupt record")

// ErrBadKey reports an out-of-range key.
var ErrBadKey = errors.New("kvs: key out of range")

func fnv64(bs ...[]byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range bs {
		for _, c := range b {
			h ^= uint64(c)
			h *= 1099511628211
		}
	}
	return h
}

// encodeRecord writes a record for key with the given version into buf.
// The payload is a deterministic function of (key, version), so any reader
// can re-derive and verify it.
func encodeRecord(buf []byte, key, version uint64) {
	payload := buf[headerSize:]
	s := key*0x9e3779b97f4a7c15 + version*1099511628211 + 1
	for i := 0; i < len(payload); i += 8 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		binary.LittleEndian.PutUint64(payload[i:], s)
	}
	binary.LittleEndian.PutUint64(buf[0:], key)
	binary.LittleEndian.PutUint64(buf[8:], version)
	binary.LittleEndian.PutUint64(buf[16:], fnv64(buf[0:16], payload))
}

// validateRecord checks key echo and checksum, returning the version.
func validateRecord(buf []byte, key uint64) (version uint64, err error) {
	gotKey := binary.LittleEndian.Uint64(buf[0:])
	version = binary.LittleEndian.Uint64(buf[8:])
	sum := binary.LittleEndian.Uint64(buf[16:])
	if gotKey != key {
		return 0, fmt.Errorf("%w: key %d read %d", ErrCorrupt, key, gotKey)
	}
	if want := fnv64(buf[0:16], buf[headerSize:]); sum != want {
		return 0, fmt.Errorf("%w: checksum mismatch for key %d", ErrCorrupt, key)
	}
	return version, nil
}

// Store is one opened table.
type Store struct {
	k    *kernel.Kernel
	file *fs.File
	base pagetable.VAddr
	keys uint64

	// Write-ahead log: like RocksDB, every update appends a log record
	// before (logically) touching the table. The log is a circular file
	// written with buffered (asynchronous) block writes; its device-write
	// traffic is what degrades read latency in mixed workloads.
	wal     *fs.File
	walSID  uint8
	walDev  uint8
	walHead int
	walLen  int
}

// Create builds the table file (keys records) on the file system and maps
// it into the process with the requested mmap flags — the "database files
// of a NoSQL application are the target of the fast file mmap()".
func Create(k *kernel.Kernel, fsys *fs.FS, p *kernel.Process, name string,
	keys uint64, sid, devID uint8, flags kernel.MmapFlags) (*Store, error) {
	f, err := fsys.Create(name, int(keys), func(page int, buf []byte) {
		encodeRecord(buf, uint64(page), 0)
	})
	if err != nil {
		return nil, err
	}
	base, err := k.Mmap(p, sid, devID, f, pagetable.Prot{Write: true, User: true}, flags)
	if err != nil {
		return nil, err
	}
	walLen := int(keys/16) + 64
	wal, err := fsys.Create(name+".wal", walLen, nil)
	if err != nil {
		return nil, err
	}
	return &Store{k: k, file: f, base: base, keys: keys,
		wal: wal, walSID: sid, walDev: devID, walLen: walLen}, nil
}

// Keys returns the number of records.
func (s *Store) Keys() uint64 { return s.keys }

// File returns the backing file.
func (s *Store) File() *fs.File { return s.file }

// Base returns the mapped base address.
func (s *Store) Base() pagetable.VAddr { return s.base }

func (s *Store) addr(key uint64) pagetable.VAddr {
	return s.base + pagetable.VAddr(key)*RecordSize
}

// Get reads and validates the record for key. done receives the record
// version and a validation error (nil on success). buf must be RecordSize
// bytes and survives until done.
func (s *Store) Get(th *kernel.Thread, key uint64, buf []byte, done func(version uint64, err error)) {
	if key >= s.keys {
		done(0, fmt.Errorf("%w: %d", ErrBadKey, key))
		return
	}
	s.k.Load(th, s.addr(key), buf[:RecordSize], func(r mmu.Result) {
		if r.Outcome == mmu.OutcomeBadAddr {
			done(0, fmt.Errorf("kvs: unmapped record %d", key))
			return
		}
		v, err := validateRecord(buf, key)
		done(v, err)
	})
}

// Put writes a full record for key at the given version: a WAL append
// (buffered device write) followed by the in-place table update through
// the mmap path.
func (s *Store) Put(th *kernel.Thread, key, version uint64, buf []byte, done func(err error)) {
	if key >= s.keys {
		done(fmt.Errorf("%w: %d", ErrBadKey, key))
		return
	}
	page := s.walHead
	s.walHead = (s.walHead + 1) % s.walLen
	s.k.WriteRaw(th, s.walSID, s.walDev, s.wal, page, func() {
		encodeRecord(buf[:RecordSize], key, version)
		s.k.Store(th, s.addr(key), buf[:RecordSize], func(r mmu.Result) {
			if r.Outcome == mmu.OutcomeBadAddr {
				done(fmt.Errorf("kvs: unmapped record %d", key))
				return
			}
			done(nil)
		})
	})
}

// ReadModifyWrite performs YCSB-F's read-modify-write: Get, bump the
// version, Put.
func (s *Store) ReadModifyWrite(th *kernel.Thread, key uint64, buf []byte, done func(err error)) {
	s.Get(th, key, buf, func(v uint64, err error) {
		if err != nil {
			done(err)
			return
		}
		s.Put(th, key, v+1, buf, done)
	})
}

// Scan reads n consecutive records starting at key (YCSB-E), validating
// each. done receives the number of records scanned and the first error.
func (s *Store) Scan(th *kernel.Thread, key uint64, n int, buf []byte, done func(scanned int, err error)) {
	scanned := 0
	var step func(k uint64)
	step = func(k uint64) {
		if scanned >= n || k >= s.keys {
			done(scanned, nil)
			return
		}
		s.Get(th, k, buf, func(_ uint64, err error) {
			if err != nil {
				done(scanned, err)
				return
			}
			scanned++
			step(k + 1)
		})
	}
	step(key)
}
