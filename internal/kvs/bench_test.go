package kvs

import "testing"

func BenchmarkRecordEncode(b *testing.B) {
	buf := make([]byte, RecordSize)
	b.SetBytes(RecordSize)
	for i := 0; i < b.N; i++ {
		encodeRecord(buf, uint64(i), 1)
	}
}

func BenchmarkRecordValidate(b *testing.B) {
	buf := make([]byte, RecordSize)
	encodeRecord(buf, 42, 7)
	b.SetBytes(RecordSize)
	for i := 0; i < b.N; i++ {
		if _, err := validateRecord(buf, 42); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRecordEncodeValidateRoundTrip asserts the correctness of the pair the
// benchmarks above measure: a record encoded for key k validates under k
// and fails under any other key.
func TestRecordEncodeValidateRoundTrip(t *testing.T) {
	buf := make([]byte, RecordSize)
	encodeRecord(buf, 42, 7)
	v, err := validateRecord(buf, 42)
	if err != nil {
		t.Fatalf("validate(42) failed: %v", err)
	}
	if v != 7 {
		t.Fatalf("version = %d, want 7", v)
	}
	if _, err := validateRecord(buf, 43); err == nil {
		t.Fatal("record for key 42 validated under key 43")
	}
}
