package kvs

import "testing"

func BenchmarkRecordEncode(b *testing.B) {
	buf := make([]byte, RecordSize)
	b.SetBytes(RecordSize)
	for i := 0; i < b.N; i++ {
		encodeRecord(buf, uint64(i), 1)
	}
}

func BenchmarkRecordValidate(b *testing.B) {
	buf := make([]byte, RecordSize)
	encodeRecord(buf, 42, 7)
	b.SetBytes(RecordSize)
	for i := 0; i < b.N; i++ {
		if _, err := validateRecord(buf, 42); err != nil {
			b.Fatal(err)
		}
	}
}
