package kvs

import (
	"errors"
	"testing"
	"testing/quick"

	"hwdp/internal/core"
	"hwdp/internal/kernel"
	"hwdp/internal/sim"
)

func testSystem(t *testing.T, scheme kernel.Scheme) *core.System {
	t.Helper()
	cfg := core.DefaultConfig(scheme)
	cfg.Cores = 4
	cfg.MemoryBytes = 16 << 20
	cfg.FSBlocks = 1 << 16
	cfg.DeviceJitter = false
	cfg.Kernel.KptedPeriod = 2 * sim.Millisecond
	return cfg.Build()
}

func mkStore(t *testing.T, sys *core.System, keys uint64) *Store {
	t.Helper()
	st, err := Create(sys.K, sys.FS, sys.Proc, "db", keys, 0, 0, sys.FastFlags())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func runUntil(sys *core.System, done *bool) {
	sys.RunWhile(func() bool { return !*done })
}

func TestRecordEncodeValidate(t *testing.T) {
	buf := make([]byte, RecordSize)
	encodeRecord(buf, 42, 7)
	v, err := validateRecord(buf, 42)
	if err != nil || v != 7 {
		t.Fatalf("validate: %v %d", err, v)
	}
	if _, err := validateRecord(buf, 43); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong key accepted: %v", err)
	}
	buf[100] ^= 1
	if _, err := validateRecord(buf, 42); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip accepted: %v", err)
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	buf := make([]byte, RecordSize)
	f := func(key, version uint64) bool {
		encodeRecord(buf, key, version)
		v, err := validateRecord(buf, key)
		return err == nil && v == version
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGetColdRecordAllSchemes(t *testing.T) {
	for _, scheme := range []kernel.Scheme{kernel.OSDP, kernel.SWDP, kernel.HWDP} {
		sys := testSystem(t, scheme)
		st := mkStore(t, sys, 256)
		th := sys.WorkloadThread(0)
		buf := make([]byte, RecordSize)
		done := false
		st.Get(th, 123, buf, func(v uint64, err error) {
			if err != nil {
				t.Errorf("%v: get: %v", scheme, err)
			}
			if v != 0 {
				t.Errorf("%v: version = %d", scheme, v)
			}
			done = true
		})
		runUntil(sys, &done)
		if !done {
			t.Fatalf("%v: get hung", scheme)
		}
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	sys := testSystem(t, kernel.HWDP)
	st := mkStore(t, sys, 128)
	th := sys.WorkloadThread(0)
	buf := make([]byte, RecordSize)
	done := false
	st.Put(th, 7, 99, buf, func(err error) {
		if err != nil {
			t.Error(err)
		}
		st.Get(th, 7, buf, func(v uint64, err error) {
			if err != nil || v != 99 {
				t.Errorf("get after put: v=%d err=%v", v, err)
			}
			done = true
		})
	})
	runUntil(sys, &done)
	if !done {
		t.Fatal("hung")
	}
}

func TestReadModifyWrite(t *testing.T) {
	sys := testSystem(t, kernel.HWDP)
	st := mkStore(t, sys, 64)
	th := sys.WorkloadThread(0)
	buf := make([]byte, RecordSize)
	done := false
	st.ReadModifyWrite(th, 5, buf, func(err error) {
		if err != nil {
			t.Error(err)
		}
		st.Get(th, 5, buf, func(v uint64, err error) {
			if err != nil || v != 1 {
				t.Errorf("rmw result: v=%d err=%v", v, err)
			}
			done = true
		})
	})
	runUntil(sys, &done)
	if !done {
		t.Fatal("hung")
	}
}

func TestScan(t *testing.T) {
	sys := testSystem(t, kernel.HWDP)
	st := mkStore(t, sys, 64)
	th := sys.WorkloadThread(0)
	buf := make([]byte, RecordSize)
	done := false
	st.Scan(th, 10, 8, buf, func(n int, err error) {
		if err != nil || n != 8 {
			t.Errorf("scan: n=%d err=%v", n, err)
		}
		done = true
	})
	runUntil(sys, &done)
	if !done {
		t.Fatal("hung")
	}
	// Scan clipped at the end of the keyspace.
	done = false
	st.Scan(th, 60, 100, buf, func(n int, err error) {
		if err != nil || n != 4 {
			t.Errorf("clipped scan: n=%d err=%v", n, err)
		}
		done = true
	})
	runUntil(sys, &done)
}

func TestBadKey(t *testing.T) {
	sys := testSystem(t, kernel.HWDP)
	st := mkStore(t, sys, 8)
	th := sys.WorkloadThread(0)
	buf := make([]byte, RecordSize)
	gotGet, gotPut := false, false
	st.Get(th, 8, buf, func(_ uint64, err error) {
		if !errors.Is(err, ErrBadKey) {
			t.Errorf("get err = %v", err)
		}
		gotGet = true
	})
	st.Put(th, 99, 1, buf, func(err error) {
		if !errors.Is(err, ErrBadKey) {
			t.Errorf("put err = %v", err)
		}
		gotPut = true
	})
	if !gotGet || !gotPut {
		t.Fatal("bad-key callbacks not synchronous")
	}
}

func TestDataSurvivesEvictionPressure(t *testing.T) {
	// Store bigger than memory: every record re-read after pressure must
	// still validate, including updated ones (writeback + refault).
	sys := testSystem(t, kernel.HWDP)
	st := mkStore(t, sys, 8192) // 32 MiB store, 16 MiB memory
	th := sys.WorkloadThread(0)
	buf := make([]byte, RecordSize)
	rng := sim.NewRand(5)
	writes := map[uint64]uint64{}
	ops := 0
	done := false
	var step func()
	step = func() {
		if ops >= 5000 {
			done = true
			return
		}
		ops++
		key := rng.Uint64() % 8192
		if rng.Intn(3) == 0 {
			v := writes[key] + 1
			writes[key] = v
			st.Put(th, key, v, buf, func(err error) {
				if err != nil {
					t.Error(err)
				}
				step()
			})
		} else {
			st.Get(th, key, buf, func(v uint64, err error) {
				if err != nil {
					t.Errorf("op %d key %d: %v", ops, key, err)
				}
				if want := writes[key]; v != want {
					t.Errorf("key %d version %d, want %d", key, v, want)
				}
				step()
			})
		}
	}
	step()
	runUntil(sys, &done)
	if !done {
		t.Fatal("hung")
	}
	if sys.K.Stats().Evictions == 0 {
		t.Fatal("test intended to create eviction pressure but did not")
	}
}
