package fleet

import (
	"fmt"

	"hwdp/internal/sim"
	"hwdp/internal/sweep"
)

// Ladder builds the standard fleet sweep: for each intensity skew, one
// experiment with QoS off (today's FIFO admission) and one with QoS on,
// so the comparison isolates exactly what weighted-fair admission buys the
// victim tenant. Tenant/thread/socket shape comes from DefaultConfig.
func Ladder(seed uint64, lanes int) []Config {
	var cfgs []Config
	for _, skew := range []float64{0.5, 1.3, 2.0, 3.0} {
		for _, qos := range []bool{false, true} {
			c := DefaultConfig()
			c.Skew = skew
			c.QoS = qos
			c.Seed = seed
			c.Lanes = lanes
			tag := "fifo"
			if qos {
				tag = "qos"
			}
			c.Name = fmt.Sprintf("fleet/skew%.2f/%s", skew, tag)
			cfgs = append(cfgs, c)
		}
	}
	return cfgs
}

// QuickLadder is the CI-sized sweep: one skew, both admission modes, a
// shorter run.
func QuickLadder(seed uint64, lanes int) []Config {
	var cfgs []Config
	for _, qos := range []bool{false, true} {
		c := DefaultConfig()
		c.QoS = qos
		c.Seed = seed
		c.Lanes = lanes
		c.Duration = 12 * sim.Millisecond
		c.Warmup = 3 * sim.Millisecond
		tag := "fifo"
		if qos {
			tag = "qos"
		}
		c.Name = fmt.Sprintf("fleet/quick/%s", tag)
		cfgs = append(cfgs, c)
	}
	return cfgs
}

// Units wraps the experiments as sweep units. Each unit's Run stores its
// Result into the returned slice at the config's index and renders the
// per-tenant report text; the orchestrator emits outputs in config order,
// so `-j 1` and `-j 8` produce identical bytes.
func Units(cfgs []Config) ([]sweep.Unit, []Result) {
	results := make([]Result, len(cfgs))
	units := make([]sweep.Unit, len(cfgs))
	for i, c := range cfgs {
		i, c := i, c
		units[i] = sweep.Unit{
			Name:        c.Name,
			Kind:        "fleet",
			Fingerprint: c.Fingerprint(),
			// The manifest and comparison need every Result in memory,
			// so cached outputs alone are not enough: always re-run.
			Uncacheable: true,
			Run: func() (string, error) {
				r, err := Run(c)
				if err != nil {
					return "", err
				}
				results[i] = r
				return RenderResult(r), nil
			},
		}
	}
	return units, results
}
