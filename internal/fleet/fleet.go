// Package fleet models fleet-scale multi-tenant serving on the
// hardware-demand-paging machine: several tenants' processes share each
// socket's SMU, free page queue and NVMe device, with per-tenant
// weighted-fair admission (smu.QoSConfig) optionally isolating them. A
// fleet experiment builds one multi-socket machine, spreads tenant threads
// over the cores with zipfian intensity (a few hot tenants, a long tail),
// drives them for a fixed virtual duration, and reports per-tenant tail
// latency, throttle/fallback counters and SLO conformance.
//
// Everything here is harness-level composition: the tenant model itself
// lives in the layers below (kernel.Thread.Tenant → mmu.TenantCarrier →
// smu.Request.Tenant → nvme.Command.Tenant), and the fleet package only
// wires configs, workloads and reports around it. Fixed-seed runs are
// byte-identical across sweep workers and engine lanes; see docs/FLEET.md.
package fleet

import (
	"fmt"

	"hwdp/internal/core"
	"hwdp/internal/fault"
	"hwdp/internal/fs"
	"hwdp/internal/kernel"
	"hwdp/internal/metrics"
	"hwdp/internal/mmu"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
	"hwdp/internal/smu"
	"hwdp/internal/workload"
)

// Config describes one fleet experiment.
type Config struct {
	// Name identifies the experiment ("fleet/skew0.99/qos").
	Name string `json:"name"`
	// Tenants is the number of tenants sharing the machine (>= 2).
	Tenants int `json:"tenants"`
	// Sockets is the machine's socket count; tenant t's dataset lives on
	// socket t % Sockets, so tenants share per-socket SMUs and devices.
	Sockets int `json:"sockets"`
	// Threads is the total workload thread count, split over tenants
	// proportionally to their zipfian intensity (each tenant gets at
	// least one).
	Threads int `json:"threads"`
	// MemoryMB sizes DRAM; DatasetRatio sizes the aggregate tenant
	// dataset as ratio * physical frames (2.0 = twice memory, so reclaim
	// keeps every tenant missing at steady state).
	MemoryMB     int     `json:"memory_mb"`
	DatasetRatio float64 `json:"dataset_ratio"`
	// Skew is the zipf theta of tenant intensity: 0 spreads threads
	// evenly, larger values concentrate them on tenant 0 (the noisy
	// neighbor). The victim is always the last tenant.
	Skew float64 `json:"skew"`
	// WriteFrac is the store fraction of every tenant's access mix.
	WriteFrac float64 `json:"write_frac"`
	// QoS arms per-tenant weighted-fair admission at every SMU with equal
	// weights (fair share). Off reproduces today's FIFO admission
	// byte-identically.
	QoS bool `json:"qos"`
	// PMSHREntries shrinks the PMSHR so tenants actually contend for
	// admission slots (0 keeps the prototype's 32).
	PMSHREntries int `json:"pmshr_entries"`
	// Duration is the measured virtual run length; Warmup is excluded
	// from every latency histogram (counters are not reset — they cover
	// the whole run).
	Duration sim.Time `json:"duration_ps"`
	Warmup   sim.Time `json:"warmup_ps"`
	// SLOTargetUS is the per-tenant p99.9 access-latency objective.
	SLOTargetUS float64 `json:"slo_target_us"`
	// Seed drives all randomness; Lanes shards the engine (0/1 keeps the
	// sequential wiring).
	Seed  uint64 `json:"seed"`
	Lanes int    `json:"lanes"`
}

// DefaultConfig is the standard fleet experiment: 3 tenants on a 2-socket
// machine (tenant 0 — the hot one — and the victim share socket 0), 16
// threads, dataset twice memory, a 2-entry PMSHR so the admission stage is
// the contended resource a noisy neighbor can monopolize.
func DefaultConfig() Config {
	return Config{
		Name:         "fleet",
		Tenants:      3,
		Sockets:      2,
		Threads:      16,
		MemoryMB:     64,
		DatasetRatio: 2.0,
		Skew:         2.0,
		WriteFrac:    0.1,
		PMSHREntries: 2,
		Duration:     40 * sim.Millisecond,
		Warmup:       8 * sim.Millisecond,
		SLOTargetUS:  200,
		Seed:         1,
	}
}

// Validate reports why the config cannot describe a fleet experiment.
func (c Config) Validate() error {
	if c.Tenants < 2 {
		return fmt.Errorf("fleet: need at least 2 tenants, have %d", c.Tenants)
	}
	if c.Threads < c.Tenants {
		return fmt.Errorf("fleet: %d threads cannot cover %d tenants", c.Threads, c.Tenants)
	}
	if c.Sockets < 1 || c.Sockets > 8 {
		return fmt.Errorf("fleet: sockets must be 1..8, have %d", c.Sockets)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("fleet: duration must be positive")
	}
	return nil
}

// Fingerprint serializes every input that affects the experiment's output.
func (c Config) Fingerprint() string {
	return fmt.Sprintf("%s|t%d|s%d|th%d|%dMB|r%.3f|skew%.3f|w%.3f|qos%v|pmshr%d|d%d|wu%d|slo%.1f|seed%d|lanes%d",
		c.Name, c.Tenants, c.Sockets, c.Threads, c.MemoryMB, c.DatasetRatio,
		c.Skew, c.WriteFrac, c.QoS, c.PMSHREntries,
		int64(c.Duration), int64(c.Warmup), c.SLOTargetUS, c.Seed, c.Lanes)
}

// ThreadCounts splits total threads over tenants proportionally to the
// zipfian intensity weights at the given skew, by largest remainder, with
// every tenant guaranteed at least one thread. The split is deterministic:
// ties break toward the lower-ranked (hotter) tenant.
func ThreadCounts(tenants, total int, skew float64) []int {
	w := workload.ZipfWeights(tenants, skew)
	counts := make([]int, tenants)
	// Reserve the one-thread floor, distribute the rest by weight.
	rest := total - tenants
	assigned := 0
	rem := make([]float64, tenants)
	for t := 0; t < tenants; t++ {
		exact := w[t] * float64(rest)
		counts[t] = 1 + int(exact)
		assigned += int(exact)
		rem[t] = exact - float64(int(exact))
	}
	for assigned < rest {
		best := 0
		for t := 1; t < tenants; t++ {
			if rem[t] > rem[best] {
				best = t
			}
		}
		counts[best]++
		rem[best] = -1
		assigned++
	}
	return counts
}

// TenantRow is one tenant's slice of a fleet run.
type TenantRow struct {
	Tenant  int     `json:"tenant"`
	Socket  int     `json:"socket"`
	Threads int     `json:"threads"`
	Weight  float64 `json:"weight"`

	Ops    uint64 `json:"ops"`
	Errors uint64 `json:"errors"`

	// SMU accounting summed over sockets (a tenant only touches its home
	// socket, but the sum keeps the report robust to future striping).
	HandledHW uint64 `json:"handled_hw"`
	Throttled uint64 `json:"throttled"`
	Fallbacks uint64 `json:"fallbacks"` // misses bounced to the OS (no free page)
	IOErrors  uint64 `json:"io_errors"`

	// Access latency percentiles (µs), measured after warmup.
	P50US  float64 `json:"p50_us"`
	P99US  float64 `json:"p99_us"`
	P999US float64 `json:"p999_us"`

	// SLO conformance: p99.9 against the configured target.
	SLOTargetUS float64 `json:"slo_target_us"`
	SLOMet      bool    `json:"slo_met"`
}

// Result is the report of one fleet experiment.
type Result struct {
	Name    string  `json:"name"`
	Tenants int     `json:"tenants"`
	Sockets int     `json:"sockets"`
	Skew    float64 `json:"skew"`
	QoS     bool    `json:"qos"`

	Ops        uint64  `json:"ops"`
	Errors     uint64  `json:"errors"`
	Throughput float64 `json:"throughput_ops_per_sec"`

	// QoS-layer totals over all sockets.
	Throttles  uint64  `json:"throttles"`
	QoSWaitP99 float64 `json:"qos_wait_p99_us"`

	Rows []TenantRow `json:"rows"`

	// VictimP999US is the last (least-weighted) tenant's p99.9 — the
	// noisy-neighbor figure of merit.
	VictimP999US float64 `json:"victim_p999_us"`
	SLOMet       int     `json:"slo_met"`
}

// tenantWork is one tenant thread's access loop: a scrambled-zipfian page
// pick over the tenant's mapped dataset, a fixed per-op cost plus user
// instructions (the FIO calibration), then one memory access that may take
// a demand-paging miss. Access latency lands in the tenant's shared
// histogram once the warmup deadline passes.
type tenantWork struct {
	sys          *core.System
	base         pagetable.VAddr
	pages        int
	gen          workload.KeyGen
	writeFrac    float64
	measureAfter sim.Time
	lat          *metrics.Histogram
}

// Op issues one access and records its latency post-warmup.
func (w *tenantWork) Op(th *kernel.Thread, rng *sim.Rand, done func(err error)) {
	page := w.gen.Next(rng)
	write := rng.Float64() < w.writeFrac
	va := w.base + pagetable.VAddr(page)*4096
	w.sys.CPU.Stall(th.HW, workload.FIOOpFixed, func() {
		w.sys.CPU.UserExec(th.HW, workload.FIOOpInstr, func() {
			start := w.sys.Eng.Now()
			w.sys.K.Access(th, va, write, func(r mmu.Result) {
				if now := w.sys.Eng.Now(); now >= w.measureAfter {
					w.lat.Record(int64(now - start))
				}
				if r.Outcome == mmu.OutcomeBadAddr {
					done(fmt.Errorf("fleet: bad address %#x", va))
					return
				}
				done(nil)
			})
		})
	})
}

// experiment is a built-but-not-yet-run fleet machine. Run composes
// newExperiment and run; the split lets the property tests inspect the
// SMUs (per-tenant counter conservation) after the workload finishes.
type experiment struct {
	cfg         Config
	sys         *core.System
	counts      []int
	weights     []float64
	lat         []*metrics.Histogram
	tenantOf    []int
	assignments []workload.Assignment
}

// Run executes one fleet experiment to completion.
func Run(c Config) (Result, error) {
	e, err := newExperiment(c, nil)
	if err != nil {
		return Result{}, err
	}
	return e.run(), nil
}

// newExperiment builds the machine, tenant processes, datasets and thread
// assignments for one experiment. faults, when non-empty, attaches the
// device-level fault injector (test-only: the chaos conservation check).
func newExperiment(c Config, faults []fault.Rule) (*experiment, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	counts := ThreadCounts(c.Tenants, c.Threads, c.Skew)
	weights := workload.ZipfWeights(c.Tenants, c.Skew)

	cfg := core.DefaultConfig(kernel.HWDP)
	cfg.FaultRules = faults
	cfg.Seed = c.Seed
	cfg.Sockets = c.Sockets
	cfg.Lanes = c.Lanes
	cfg.MemoryBytes = uint64(c.MemoryMB) << 20
	cfg.PMSHREntries = c.PMSHREntries
	// One physical core per workload thread (threads pin to even hardware
	// threads; the background kernel threads ride odd SMT siblings), with
	// a floor that keeps the three background threads on distinct cores.
	if cfg.Cores < c.Threads {
		cfg.Cores = c.Threads
	}
	if cfg.Cores < 4 {
		cfg.Cores = 4
	}
	// Per-socket kpoold sweeps: the fleet path's sharded refill schedule.
	cfg.Kernel.ShardKpoold = true
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	for _, s := range sys.SMUs {
		s.EnsureTenants(c.Tenants)
		if c.QoS {
			// Equal weights: fair sharing of each socket's PMSHR and
			// device queue regardless of tenant intensity.
			w := make([]float64, c.Tenants)
			for i := range w {
				w[i] = 1
			}
			s.SetQoS(smu.QoSConfig{Tenants: c.Tenants, Weights: w})
		}
	}

	// Aggregate dataset = DatasetRatio * physical frames, split evenly so
	// intensity (thread count), not footprint, is what distinguishes
	// tenants.
	framesTotal := int(cfg.MemoryBytes / 4096)
	pagesPerTenant := int(float64(framesTotal) * c.DatasetRatio / float64(c.Tenants))
	if pagesPerTenant < 1 {
		return nil, fmt.Errorf("fleet: dataset ratio %.2f leaves no pages per tenant", c.DatasetRatio)
	}

	lat := make([]*metrics.Histogram, c.Tenants)
	tenantOf := make([]int, 0, c.Threads)
	var assignments []workload.Assignment
	hw := 0
	for t := 0; t < c.Tenants; t++ {
		socket := t % c.Sockets
		proc := sys.K.NewProcess()
		f, err := sys.FSs[socket].Create(fmt.Sprintf("tenant%02d.dat", t),
			pagesPerTenant, fs.SeededInit(c.Seed+uint64(t)))
		if err != nil {
			return nil, fmt.Errorf("fleet: tenant %d dataset: %w", t, err)
		}
		base, err := sys.K.Mmap(proc, uint8(socket), 0, f,
			pagetable.Prot{Write: true, User: true}, sys.FastFlags())
		if err != nil {
			return nil, fmt.Errorf("fleet: tenant %d mmap: %w", t, err)
		}
		lat[t] = metrics.NewHistogram()
		w := &tenantWork{
			sys: sys, base: base, pages: pagesPerTenant,
			gen: workload.Scrambled{
				Gen: workload.NewZipfian(uint64(pagesPerTenant), workload.ZipfTheta),
				N:   uint64(pagesPerTenant),
			},
			writeFrac:    c.WriteFrac,
			measureAfter: sys.Eng.Now() + c.Warmup,
			lat:          lat[t],
		}
		for i := 0; i < counts[t]; i++ {
			th := sys.K.NewThread(proc, 2*hw)
			th.Tenant = t
			assignments = append(assignments, workload.Assignment{Th: th, W: w})
			tenantOf = append(tenantOf, t)
			hw++
		}
	}
	return &experiment{
		cfg: c, sys: sys, counts: counts, weights: weights,
		lat: lat, tenantOf: tenantOf, assignments: assignments,
	}, nil
}

// run drives the experiment for its configured duration and builds the
// per-tenant report.
func (e *experiment) run() Result {
	c, sys := e.cfg, e.sys
	counts, weights, lat := e.counts, e.weights, e.lat

	results := workload.RunMixed(sys, e.assignments, workload.RunOptions{Duration: c.Duration})

	res := Result{
		Name: c.Name, Tenants: c.Tenants, Sockets: c.Sockets,
		Skew: c.Skew, QoS: c.QoS,
	}
	perTenant := make([]workload.Result, c.Tenants)
	for i := range perTenant {
		perTenant[i].Lat = metrics.NewHistogram()
	}
	for i, r := range results {
		t := e.tenantOf[i]
		perTenant[t].Ops += r.Ops
		perTenant[t].Errors += r.Errors
		if r.Elapsed > perTenant[t].Elapsed {
			perTenant[t].Elapsed = r.Elapsed
		}
	}
	qosWait := metrics.NewHistogram()
	for _, s := range sys.SMUs {
		res.Throttles += s.QoSWait().Count()
		qosWait.Merge(s.QoSWait())
	}
	if qosWait.Count() > 0 {
		res.QoSWaitP99 = float64(qosWait.Percentile(99)) / 1e6
	}
	for t := 0; t < c.Tenants; t++ {
		row := TenantRow{
			Tenant: t, Socket: t % c.Sockets, Threads: counts[t],
			Weight: weights[t],
			Ops:    perTenant[t].Ops, Errors: perTenant[t].Errors,
			SLOTargetUS: c.SLOTargetUS,
		}
		for _, s := range sys.SMUs {
			ts := s.TenantCounters(t)
			row.HandledHW += ts.Handled
			row.Throttled += ts.Throttled
			row.Fallbacks += ts.NoFreePage
			row.IOErrors += ts.IOErrors
		}
		h := lat[t]
		if h.Count() > 0 {
			row.P50US = float64(h.Percentile(50)) / 1e6
			row.P99US = float64(h.Percentile(99)) / 1e6
			row.P999US = float64(h.Percentile(99.9)) / 1e6
		}
		row.SLOMet = row.P999US <= c.SLOTargetUS
		if row.SLOMet {
			res.SLOMet++
		}
		res.Ops += row.Ops
		res.Errors += row.Errors
		res.Rows = append(res.Rows, row)
	}
	res.Throughput = float64(res.Ops) / c.Duration.Seconds()
	res.VictimP999US = res.Rows[c.Tenants-1].P999US
	return res
}
