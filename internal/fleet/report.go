package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
)

// ManifestSchema versions the FLEET_hwdp.json layout.
const ManifestSchema = 1

// Manifest is the machine-readable record of one fleet sweep, written as
// FLEET_hwdp.json for CI artifacts. Results appear in config-list order,
// so the manifest is deterministic for a fixed ladder (host fields aside).
type Manifest struct {
	Schema    int    `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Experiments/SLOMet summarize the sweep: SLOMet counts tenant rows
	// meeting their p99.9 objective across all experiments.
	Experiments int `json:"experiments"`
	SLOMet      int `json:"slo_met"`
	TenantRows  int `json:"tenant_rows"`
	// Results is one report per experiment, in config order.
	Results []Result `json:"results"`
}

// NewManifest summarizes fleet results.
func NewManifest(results []Result) Manifest {
	m := Manifest{
		Schema:      ManifestSchema,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Experiments: len(results),
		Results:     results,
	}
	for _, r := range results {
		m.SLOMet += r.SLOMet
		m.TenantRows += len(r.Rows)
	}
	return m
}

// Write marshals the manifest to path as indented JSON.
func (m Manifest) Write(path string) error {
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}

// RenderResult renders one experiment's per-tenant SLO report.
func RenderResult(r Result) string {
	var b strings.Builder
	qos := "off"
	if r.QoS {
		qos = "on"
	}
	fmt.Fprintf(&b, "== fleet %s (%d tenants, %d sockets, skew %.2f, qos %s) ==\n",
		r.Name, r.Tenants, r.Sockets, r.Skew, qos)
	fmt.Fprintf(&b, "  ops %d (errors %d)  throughput %.0f ops/s  throttles %d",
		r.Ops, r.Errors, r.Throughput, r.Throttles)
	if r.Throttles > 0 {
		fmt.Fprintf(&b, " (wait p99 %.2fus)", r.QoSWaitP99)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  %-7s %3s %3s %7s %9s %9s %9s %9s %9s %9s %9s  %s\n",
		"tenant", "sk", "th", "weight", "ops", "hw-miss", "throttle",
		"fallback", "p50us", "p99us", "p99.9us", "slo")
	for _, row := range r.Rows {
		slo := "MET"
		if !row.SLOMet {
			slo = "violated"
		}
		fmt.Fprintf(&b, "  %-7d %3d %3d %7.3f %9d %9d %9d %9d %9.2f %9.2f %9.2f  %s\n",
			row.Tenant, row.Socket, row.Threads, row.Weight, row.Ops,
			row.HandledHW, row.Throttled, row.Fallbacks,
			row.P50US, row.P99US, row.P999US, slo)
	}
	fmt.Fprintf(&b, "  slo: %d/%d tenants within p99.9 <= %.0fus  victim p99.9 %.2fus\n",
		r.SLOMet, len(r.Rows), r.Rows[0].SLOTargetUS, r.VictimP999US)
	return b.String()
}

// RenderComparison renders the noisy-neighbor isolation figure: the victim
// tenant's p99.9 with QoS off vs on across the skew ladder, and the
// improvement factor isolation buys.
func RenderComparison(results []Result) string {
	type cell struct {
		p999      float64
		victimOps uint64
		ok        bool
	}
	byKey := map[string]cell{}
	var skews []float64
	seen := map[float64]bool{}
	for _, r := range results {
		victimOps := uint64(0)
		if n := len(r.Rows); n > 0 {
			victimOps = r.Rows[n-1].Ops
		}
		byKey[fmt.Sprintf("%v|%.3f", r.QoS, r.Skew)] = cell{
			p999: r.VictimP999US, victimOps: victimOps, ok: true,
		}
		if !seen[r.Skew] {
			seen[r.Skew] = true
			skews = append(skews, r.Skew)
		}
	}
	var b strings.Builder
	b.WriteString("== Noisy-neighbor isolation (victim tenant p99.9, us) ==\n")
	fmt.Fprintf(&b, "   %-10s %14s %14s %12s %12s %12s\n",
		"skew", "qos-off p99.9", "qos-on p99.9", "improvement",
		"ops (off)", "ops (on)")
	for _, skew := range skews {
		off := byKey[fmt.Sprintf("false|%.3f", skew)]
		on := byKey[fmt.Sprintf("true|%.3f", skew)]
		if !off.ok || !on.ok {
			continue
		}
		imp := "-"
		if on.p999 > 0 {
			imp = fmt.Sprintf("%.2fx", off.p999/on.p999)
		}
		fmt.Fprintf(&b, "   %-10.2f %14.2f %14.2f %12s %12d %12d\n",
			skew, off.p999, on.p999, imp, off.victimOps, on.victimOps)
	}
	b.WriteString("\n   (victim = least-weighted tenant. QoS off is today's FIFO\n")
	b.WriteString("    admission; QoS on arms equal-weight fair admission at each\n")
	b.WriteString("    socket's SMU. Fixed seed; deterministic. See docs/FLEET.md.)\n")
	return b.String()
}
