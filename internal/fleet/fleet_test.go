package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"hwdp/internal/fault"
	"hwdp/internal/sim"
	"hwdp/internal/smu"
	"hwdp/internal/sweep"
)

func TestThreadCountsShape(t *testing.T) {
	for _, tc := range []struct {
		tenants, total int
		skew           float64
	}{
		{2, 2, 0}, {3, 16, 2.0}, {4, 8, 0.99}, {8, 9, 3.0}, {5, 64, 1.3},
	} {
		counts := ThreadCounts(tc.tenants, tc.total, tc.skew)
		sum := 0
		for t2, n := range counts {
			if n < 1 {
				t.Errorf("ThreadCounts(%d,%d,%.2f): tenant %d got %d threads, want >= 1",
					tc.tenants, tc.total, tc.skew, t2, n)
			}
			if t2 > 0 && counts[t2] > counts[t2-1] {
				t.Errorf("ThreadCounts(%d,%d,%.2f): counts not monotone: %v",
					tc.tenants, tc.total, tc.skew, counts)
			}
			sum += n
		}
		if sum != tc.total {
			t.Errorf("ThreadCounts(%d,%d,%.2f) = %v sums to %d, want %d",
				tc.tenants, tc.total, tc.skew, counts, sum, tc.total)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Tenants = 1 },
		func(c *Config) { c.Threads = 2 },
		func(c *Config) { c.Sockets = 9 },
		func(c *Config) { c.Sockets = 0 },
		func(c *Config) { c.Duration = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: Validate accepted an invalid config", i)
		}
	}
}

// TestIsolationImprovement is the tentpole acceptance check: under a noisy
// neighbor at the top of the skew ladder, arming QoS improves the victim
// tenant's p99.9 access latency by at least 2x. The run is fixed-seed, so
// the measured factor is deterministic.
func TestIsolationImprovement(t *testing.T) {
	var p999 [2]float64
	for i, qos := range []bool{false, true} {
		c := DefaultConfig()
		c.Skew = 3.0
		c.QoS = qos
		r, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if r.Ops == 0 || r.VictimP999US == 0 {
			t.Fatalf("qos=%v: empty run: ops=%d victim p99.9=%v", qos, r.Ops, r.VictimP999US)
		}
		victim := r.Rows[len(r.Rows)-1]
		if victim.Ops < 500 {
			t.Fatalf("qos=%v: victim recorded only %d ops; tail percentiles meaningless", qos, victim.Ops)
		}
		p999[i] = r.VictimP999US
	}
	factor := p999[0] / p999[1]
	t.Logf("victim p99.9: qos-off %.2fus, qos-on %.2fus, improvement %.2fx", p999[0], p999[1], factor)
	if factor < 2 {
		t.Fatalf("isolation improved victim p99.9 only %.2fx (off %.2fus on %.2fus), want >= 2x",
			factor, p999[0], p999[1])
	}
}

// TestLaneInvariance pins the fleet figure across engine lane counts: the
// rendered report and the full JSON result must be byte-identical between
// the sequential wiring and the maximally-sharded lane group.
func TestLaneInvariance(t *testing.T) {
	var out [2]string
	var js [2][]byte
	for i, lanes := range []int{1, 8} {
		c := DefaultConfig()
		c.QoS = true
		c.Duration = 10 * sim.Millisecond
		c.Warmup = 2 * sim.Millisecond
		c.Lanes = lanes
		r, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		r.Name = "pin" // lane count is not part of the result
		out[i] = RenderResult(r)
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		js[i] = b
	}
	if out[0] != out[1] {
		t.Errorf("rendered fleet report differs between -lanes 1 and -lanes 8:\n%s\nvs\n%s", out[0], out[1])
	}
	if !bytes.Equal(js[0], js[1]) {
		t.Errorf("fleet result JSON differs between -lanes 1 and -lanes 8")
	}
}

// TestSweepWorkerInvariance pins the fleet figure across sweep worker
// counts: running the quick ladder under -j 1 and -j 8 must emit identical
// bytes (unit-list-order emission).
func TestSweepWorkerInvariance(t *testing.T) {
	emit := func(workers int) string {
		units, _ := Units(QuickLadder(1, 0))
		var buf bytes.Buffer
		rs := sweep.Run(units, sweep.Options{Workers: workers, Out: &buf})
		for _, r := range rs {
			if r.Status != sweep.StatusOK {
				t.Fatalf("unit %s: %s: %s", r.Name, r.Status, r.Err)
			}
		}
		return buf.String()
	}
	a, b := emit(1), emit(8)
	if a != b {
		t.Errorf("fleet sweep output differs between -j 1 and -j 8:\n%s\nvs\n%s", a, b)
	}
}

// mirroredFields are the TenantStats fields that mirror a same-named
// global smu.Stats counter one-to-one. Submitted and Throttled are
// excluded: they count QoS/NVMe-layer events with no global twin.
func mirroredFields() []string {
	var names []string
	st := reflect.TypeOf(smu.Stats{})
	tt := reflect.TypeOf(smu.TenantStats{})
	for i := 0; i < tt.NumField(); i++ {
		name := tt.Field(i).Name
		if _, ok := st.FieldByName(name); ok {
			names = append(names, name)
		}
	}
	return names
}

// TestTenantConservation is the per-tenant accounting property: for every
// mirrored counter, the sum over tenant rows equals the global SMU
// counter — under QoS on and off, under engine lanes, and under a device
// fault storm (which exercises the retry/timeout/UECC mirrors).
func TestTenantConservation(t *testing.T) {
	fields := mirroredFields()
	if len(fields) < 10 {
		t.Fatalf("only %d mirrored fields found via reflection; TenantStats drifted from Stats?", len(fields))
	}
	storm := []fault.Rule{
		{Kind: fault.Transient, Prob: 0.05},
		{Kind: fault.UECC, Prob: 0.01, ReadsOnly: true, MaxInjections: 50},
		{Kind: fault.Spike, Prob: 0.02, SpikeFactor: 8},
	}
	cases := []struct {
		name   string
		qos    bool
		lanes  int
		faults []fault.Rule
	}{
		{"fifo", false, 0, nil},
		{"qos", true, 0, nil},
		{"qos-lanes", true, 8, nil},
		{"fifo-faults", false, 0, storm},
		{"qos-faults", true, 0, storm},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := DefaultConfig()
			c.QoS = tc.qos
			c.Lanes = tc.lanes
			c.Duration = 10 * sim.Millisecond
			c.Warmup = 2 * sim.Millisecond
			e, err := newExperiment(c, tc.faults)
			if err != nil {
				t.Fatal(err)
			}
			res := e.run()
			if res.Ops == 0 {
				t.Fatal("empty run")
			}
			for sid, s := range e.sys.SMUs {
				global := reflect.ValueOf(s.Stats())
				for _, f := range fields {
					var sum uint64
					for tn := 0; tn < s.Tenants(); tn++ {
						row := reflect.ValueOf(s.TenantCounters(tn))
						sum += row.FieldByName(f).Uint()
					}
					if want := global.FieldByName(f).Uint(); sum != want {
						t.Errorf("smu %d: sum over tenants of %s = %d, global = %d", sid, f, sum, want)
					}
				}
			}
		})
	}
}

// TestLadderRenders smoke-checks the full ladder report plumbing: every
// unit runs, the manifest summarizes every tenant row, and the comparison
// figure has one line per skew.
func TestLadderRenders(t *testing.T) {
	cfgs := QuickLadder(1, 0)
	units, results := Units(cfgs)
	var buf bytes.Buffer
	rs := sweep.Run(units, sweep.Options{Workers: 2, Out: &buf})
	for _, r := range rs {
		if r.Status != sweep.StatusOK {
			t.Fatalf("unit %s: %s: %s", r.Name, r.Status, r.Err)
		}
	}
	m := NewManifest(results)
	if m.Experiments != len(cfgs) || m.TenantRows != len(cfgs)*cfgs[0].Tenants {
		t.Fatalf("manifest shape: %d experiments, %d tenant rows", m.Experiments, m.TenantRows)
	}
	cmp := RenderComparison(results)
	if want := fmt.Sprintf("%.2f", cfgs[0].Skew); !bytes.Contains([]byte(cmp), []byte(want)) {
		t.Errorf("comparison missing skew row %s:\n%s", want, cmp)
	}
}
