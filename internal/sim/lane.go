package sim

import (
	"fmt"
	"sync/atomic"
)

// This file shards the discrete-event engine into per-component event
// lanes: a Group couples N Engines (lane 0 is the "home" lane for
// CPU/kernel events; further lanes host device domains) and runs them in
// conservative-lookahead rounds. Within a round every lane fires only
// events strictly below the round horizon, so lanes may execute on
// separate goroutines without observing each other; cross-lane effects
// travel as mailbox messages (Engine.Send/SendArg) that the coordinator
// drains between rounds in a fixed, stable order. Fixed-seed output is
// therefore byte-identical whether the group runs serially or in
// parallel — the property the golden SHA-256 pin and the j1-vs-jN
// equivalence tests enforce. See docs/ENGINE.md for the protocol.

// xmsg is one buffered cross-lane send. Arrival time is fixed at send
// time (src clock + delay); src and seq make the end-of-round merge a
// strict total order: messages are delivered sorted by
// (at, src lane, per-src send index).
type xmsg struct {
	at  Time
	seq uint64
	src int
	fn  func()
	afn func(any)
	arg any
}

// GroupStats counts scheduler-level activity for reporting and tests. It
// says nothing about model behavior; fixed-seed model output is identical
// whatever these counters read.
type GroupStats struct {
	// Rounds is the total number of synchronization rounds executed.
	Rounds uint64
	// ParallelRounds counts rounds that dispatched two or more lanes to
	// worker goroutines (the rest ran inline on the coordinator).
	ParallelRounds uint64
	// BucketRounds counts rounds that fell back to time-bucketed barrier
	// execution because the lookahead horizon had collapsed onto the
	// earliest pending timestamp.
	BucketRounds uint64
	// CrossSends is the number of mailbox messages delivered.
	CrossSends uint64
	// TieCrossSends counts delivered messages that shared an arrival
	// timestamp with a message from a different source lane. Ties are
	// broken by lane order, which a sequential engine cannot distinguish
	// from any other order only if the model never relies on it; the
	// equivalence tests assert this stays zero on the stock workloads.
	TieCrossSends uint64
}

// Group couples per-lane engines and synchronizes them with conservative
// lookahead. Construct with NewGroup, wire model components to the lane
// engines (Lane), then drive the whole group with Run/RunUntil/RunWhile.
// Methods on Group must be called from a single goroutine, and never from
// inside an event callback.
type Group struct {
	lanes  []*Engine
	serial bool
	stats  GroupStats

	// work/done carry round bounds to the per-lane worker goroutines and
	// completions back. Workers exist only between startWorkers and
	// stopWorkers, i.e. inside a top-level run call on a non-serial group.
	work []chan Time
	done chan int

	// scratch is the reusable end-of-round merge buffer.
	scratch []xmsg

	// running guards against re-entrant run calls (e.g. from a callback).
	running atomic.Bool
}

// NewGroup returns a group of n lanes (n >= 1). Lane 0 is the home lane.
// Every lane starts with zero lookahead — always safe, but every round
// degrades to a time-bucketed barrier; components must declare their real
// cross-send floor with Engine.SetLookahead to unlock parallel windows.
func NewGroup(n int) *Group {
	if n < 1 {
		panic("sim: NewGroup needs at least one lane")
	}
	g := &Group{done: make(chan int, n)}
	g.lanes = make([]*Engine, n)
	for i := range g.lanes {
		e := NewEngine()
		e.grp = g
		e.lane = i
		e.outbox = make([][]xmsg, n)
		g.lanes[i] = e
	}
	return g
}

// Lanes returns the number of lanes in the group.
func (g *Group) Lanes() int { return len(g.lanes) }

// Lane returns the engine for lane i (0 is the home lane).
func (g *Group) Lane(i int) *Engine { return g.lanes[i] }

// Home returns the home lane's engine (lane 0).
func (g *Group) Home() *Engine { return g.lanes[0] }

// Stats returns a snapshot of the scheduler counters.
func (g *Group) Stats() GroupStats { return g.stats }

// SetSerial forces every round to execute inline on the calling goroutine
// in lane order instead of on worker goroutines. The event schedule is
// identical either way; serial mode exists for debugging and for the
// equivalence tests that diff serial-vs-parallel event streams.
func (g *Group) SetSerial(v bool) { g.serial = v }

// Now returns the home lane's clock, which run calls keep aligned with
// what a sequential engine would read (see runRounds).
func (g *Group) Now() Time { return g.lanes[0].now }

// Fired returns the total number of events executed across all lanes.
func (g *Group) Fired() uint64 {
	var n uint64
	for _, ln := range g.lanes {
		n += ln.fired
	}
	return n
}

// Pending returns the total number of queued events across all lanes,
// including canceled events not yet collected.
func (g *Group) Pending() int {
	n := 0
	for _, ln := range g.lanes {
		n += len(ln.queue)
	}
	return n
}

// Send schedules fn on dst's lane after delay d of this engine's clock,
// fire-and-forget. On the same engine it is exactly Post; across lanes it
// buffers a mailbox message delivered at the end of the round. d must be
// at least the sending lane's declared lookahead (SetLookahead) — a
// shorter send is detected at delivery and panics, because events beyond
// its arrival time may already have fired.
//
//hwdp:hotpath
func (e *Engine) Send(dst *Engine, d Time, fn func()) {
	if dst == e {
		e.Post(d, fn)
		return
	}
	e.crossSend(dst, d, xmsg{fn: fn})
}

// SendArg is Send with a pre-bound callback and argument, mirroring
// PostArg: same-engine sends stay on the zero-allocation pooled path.
//
//hwdp:hotpath
func (e *Engine) SendArg(dst *Engine, d Time, fn func(any), arg any) {
	if dst == e {
		e.PostArg(d, fn, arg)
		return
	}
	e.crossSend(dst, d, xmsg{afn: fn, arg: arg})
}

// crossSend buffers m for dst in this lane's outbox.
func (e *Engine) crossSend(dst *Engine, d Time, m xmsg) {
	if e.grp == nil || dst.grp != e.grp {
		panic("sim: cross-engine send between engines that do not share a Group")
	}
	if d < 0 {
		d = 0
	}
	m.at = e.now + d
	m.seq = e.obSeq
	m.src = e.lane
	e.obSeq++
	//hwdp:ignore hotalloc outbox growth is amortized: merge recycles the backing arrays, so steady-state rounds append into retained capacity
	e.outbox[dst.lane] = append(e.outbox[dst.lane], m)
}

// headAt returns the timestamp of this lane's earliest live event,
// collecting dead heap roots on the way. ok is false when the queue is
// empty.
func (e *Engine) headAt() (at Time, ok bool) {
	for len(e.queue) > 0 {
		if e.queue[0].dead {
			e.recycle(e.pop())
			continue
		}
		return e.queue[0].at, true
	}
	return 0, false
}

// drainBelow fires every event with at < bound (including events the
// fired callbacks schedule back under the bound).
func (e *Engine) drainBelow(bound Time) {
	for {
		at, ok := e.headAt()
		if !ok || at >= bound {
			return
		}
		e.Step()
	}
}

// drainBelowCond is drainBelow with the sequential RunWhile contract:
// cond is evaluated before every fire and a false result stops the drain
// immediately. Only the home lane uses it — cond reads home-lane state,
// which no other lane may touch, so evaluating it while workers run is
// race-free. Returns true when cond stopped the drain.
func (e *Engine) drainBelowCond(bound Time, cond func() bool) bool {
	for {
		at, ok := e.headAt()
		if !ok || at >= bound {
			return false
		}
		if !cond() {
			return true
		}
		e.Step()
	}
}

// Run fires events on all lanes until every queue drains.
func (g *Group) Run() { g.runRounds(Never, nil) }

// RunUntil fires events until every queue drains or the group clock would
// pass deadline; events exactly at deadline still fire. On return every
// lane's clock reads what a single sequential engine's clock would: the
// deadline when fully drained, otherwise the latest fired timestamp.
func (g *Group) RunUntil(deadline Time) Time {
	g.runRounds(deadline, nil)
	end := deadline
	if !g.drained() {
		end = 0
		for _, ln := range g.lanes {
			if ln.now > end {
				end = ln.now
			}
		}
	}
	for _, ln := range g.lanes {
		if ln.now < end {
			ln.now = end
		}
	}
	return end
}

// RunWhile fires events for as long as cond returns true, checking cond
// before every home-lane event exactly like a sequential
// `for cond() && Step()` loop. Because cond may only read home-lane
// state, and home-lane state changes only on home-lane events, the stop
// point is bit-exact versus the sequential engine. Device lanes may have
// advanced up to one round window past the stop time; their pending
// events fire on the next run call, in the same order a sequential engine
// would have fired them.
func (g *Group) RunWhile(cond func() bool) {
	if cond == nil {
		panic("sim: RunWhile needs a condition")
	}
	g.runRounds(Never, cond)
}

// drained reports whether every lane's queue is empty of live events.
func (g *Group) drained() bool {
	for _, ln := range g.lanes {
		if _, ok := ln.headAt(); ok {
			return false
		}
	}
	return true
}

// runRounds is the conservative-lookahead scheduler. Each round:
//
//  1. tmin = earliest pending event; H = min over non-empty lanes of
//     (earliest event + declared lookahead). No lane can emit a
//     cross-lane message arriving before H, so every event below H is
//     safe to fire without hearing from other lanes.
//  2. If H <= tmin (lookahead collapsed), fall back to a time-bucketed
//     barrier round: fire only events at exactly tmin.
//  3. Fire each active lane's window — inline when one lane is active or
//     the group is serial, on worker goroutines otherwise.
//  4. Deliver mailboxes in (arrival, src lane, send index) order and
//     start over.
//
// deadline < 0 means none. cond, when set, applies the RunWhile contract
// on the home lane.
func (g *Group) runRounds(deadline Time, cond func() bool) {
	if !g.running.CompareAndSwap(false, true) {
		panic("sim: re-entrant Group run call")
	}
	defer g.running.Store(false)
	if !g.serial && len(g.lanes) > 1 {
		g.startWorkers()
		defer g.stopWorkers()
	}
	for {
		if cond != nil && !cond() {
			return
		}
		tmin, horizon := g.roundBounds()
		if tmin == Never || (deadline >= 0 && tmin > deadline) {
			return
		}
		bound := horizon
		if deadline >= 0 && bound > deadline+1 {
			bound = deadline + 1
		}
		floor := bound // minimum legal arrival for this round's sends
		bucket := bound <= tmin
		if bucket {
			bound = tmin + 1
			floor = tmin
			g.stats.BucketRounds++
		}
		g.stats.Rounds++
		if g.fireRound(bound, cond) {
			g.deliver(floor)
			return
		}
		g.deliver(floor)
	}
}

// roundBounds scans the lanes for the earliest pending event and the
// conservative horizon. tmin is Never when every queue is empty.
func (g *Group) roundBounds() (tmin, horizon Time) {
	tmin, horizon = Never, Never
	for _, ln := range g.lanes {
		at, ok := ln.headAt()
		if !ok {
			continue
		}
		if tmin == Never || at < tmin {
			tmin = at
		}
		h := at + ln.lookahead
		if horizon == Never || h < horizon {
			horizon = h
		}
	}
	return tmin, horizon
}

// fireRound drains every active lane's [head, bound) window, returning
// true when cond stopped the home lane. Workers receive their bound over
// a channel and signal completion back, which also publishes their
// outboxes to the coordinator (channel happens-before).
func (g *Group) fireRound(bound Time, cond func() bool) (stopped bool) {
	// Collect the active lanes: those with a live event below the bound.
	homeActive := false
	dispatched := 0
	inline := g.work == nil
	var only *Engine
	for _, ln := range g.lanes {
		at, ok := ln.headAt()
		if !ok || at >= bound {
			continue
		}
		if ln.lane == 0 {
			homeActive = true
			continue
		}
		if inline {
			ln.drainBelow(bound)
			continue
		}
		if only == nil && dispatched == 0 {
			only = ln
			continue
		}
		if only != nil {
			// A second active lane: dispatch the deferred first one.
			g.work[only.lane] <- bound
			dispatched++
			only = nil
		}
		g.work[ln.lane] <- bound
		dispatched++
	}
	if only != nil && !homeActive {
		// Single active device lane: run it inline, no handoff needed.
		only.drainBelow(bound)
		only = nil
	}
	if only != nil {
		g.work[only.lane] <- bound
		dispatched++
	}
	if homeActive {
		if cond != nil {
			stopped = g.lanes[0].drainBelowCond(bound, cond)
		} else {
			g.lanes[0].drainBelow(bound)
		}
	}
	if dispatched > 0 {
		if homeActive || dispatched > 1 {
			g.stats.ParallelRounds++
		}
		for ; dispatched > 0; dispatched-- {
			<-g.done
		}
	}
	return stopped
}

// deliver merges every lane's outbox into the destination queues. For
// each destination the pending messages are sorted by (arrival, src lane,
// per-src send index) — a strict total order, so delivery is independent
// of which goroutines ran the round. An arrival below the round floor is
// a lookahead-protocol violation: events past it may already have fired,
// so the error is unrecoverable by design and panics loudly rather than
// silently corrupting determinism.
func (g *Group) deliver(floor Time) {
	for dst, dstLn := range g.lanes {
		buf := g.scratch[:0]
		for _, src := range g.lanes {
			ob := src.outbox[dst]
			if len(ob) == 0 {
				continue
			}
			buf = append(buf, ob...)
			for i := range ob {
				ob[i] = xmsg{}
			}
			src.outbox[dst] = ob[:0]
		}
		if len(buf) == 0 {
			continue
		}
		sortXmsgs(buf)
		for i := range buf {
			m := &buf[i]
			if m.at < floor {
				panic(fmt.Sprintf(
					"sim: lookahead violation: lane %d sent an event arriving at %v on lane %d, below the round floor %v; raise the send delay or lower the sender's SetLookahead",
					m.src, m.at, dst, floor))
			}
			if i > 0 && buf[i-1].at == m.at && buf[i-1].src != m.src {
				g.stats.TieCrossSends++
			}
			ev := dstLn.alloc()
			ev.pooled = true
			ev.fn = m.fn
			ev.afn = m.afn
			ev.arg = m.arg
			dstLn.schedule(ev, m.at)
		}
		g.stats.CrossSends += uint64(len(buf))
		for i := range buf {
			buf[i] = xmsg{}
		}
		g.scratch = buf[:0]
	}
}

// sortXmsgs orders messages by (at, src, seq) with insertion sort: round
// mailboxes are nearly always tiny (a handful of doorbell/IRQ crossings),
// and avoiding sort.Slice keeps the drain allocation-free.
func sortXmsgs(ms []xmsg) {
	for i := 1; i < len(ms); i++ {
		m := ms[i]
		j := i - 1
		for j >= 0 && xmsgLess(m, ms[j]) {
			ms[j+1] = ms[j]
			j--
		}
		ms[j+1] = m
	}
}

// xmsgLess is the strict total delivery order.
func xmsgLess(a, b xmsg) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// startWorkers spawns one goroutine per non-home lane. The goroutines
// exist only for the duration of one top-level run call: each blocks for
// a round bound, drains its own lane below it, and reports back. A lane's
// engine and outboxes are touched by exactly one goroutine at a time, and
// the done-channel receive publishes all of a worker's writes to the
// coordinator before the mailbox drain reads them.
func (g *Group) startWorkers() {
	g.work = make([]chan Time, len(g.lanes))
	for i := 1; i < len(g.lanes); i++ {
		ch := make(chan Time, 1)
		g.work[i] = ch
		ln := g.lanes[i]
		//hwdp:ignore simdeterminism lane workers synchronize at round barriers; per-lane event order is single-threaded and the mailbox merge is a strict total order
		go func() {
			for b := range ch {
				ln.drainBelow(b)
				g.done <- ln.lane
			}
		}()
	}
}

// stopWorkers shuts the worker goroutines down at the end of a run call,
// so an idle group owns no goroutines and needs no Close.
func (g *Group) stopWorkers() {
	for i := 1; i < len(g.work); i++ {
		close(g.work[i])
	}
	g.work = nil
}
