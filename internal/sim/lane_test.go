package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"testing"
)

// laneRecorder hashes one lane's fired-event stream: (lane, at) per event.
// Two runs whose recorders agree on every lane executed the same events at
// the same times in the same per-lane order.
type laneRecorder struct {
	lane int
	h    []byte
	n    int
}

func recordLanes(g *Group) []*laneRecorder {
	recs := make([]*laneRecorder, g.Lanes())
	for i := range recs {
		r := &laneRecorder{lane: i}
		recs[i] = r
		var buf [8]byte
		sum := sha256.New()
		g.Lane(i).SetObserver(func(at Time) {
			binary.LittleEndian.PutUint64(buf[:], uint64(at))
			sum.Write(buf[:])
			r.n++
			r.h = sum.Sum(r.h[:0])
		})
	}
	return recs
}

func fingerprint(recs []*laneRecorder) string {
	s := ""
	for _, r := range recs {
		s += fmt.Sprintf("lane%d:%d:%x;", r.lane, r.n, r.h)
	}
	return s
}

// pingPong wires a deterministic two-lane model: lane 0 sends a token to
// lane 1 with delay d01, lane 1 does local work then sends it back with
// delay d10, n times. Returns the slice that accumulates (lane, time)
// marks — identical content and order is the correctness bar.
func pingPong(a, b *Engine, d01, d10 Time, n int, marks *[]string) {
	var ping, pong func()
	i := 0
	ping = func() {
		*marks = append(*marks, fmt.Sprintf("a@%v", a.Now()))
		if i >= n {
			return
		}
		i++
		a.Send(b, d01, pong)
	}
	pong = func() {
		*marks = append(*marks, fmt.Sprintf("b@%v", b.Now()))
		// Local work on lane b before replying.
		b.Post(1*Nanosecond, func() {
			b.Send(a, d10, ping)
		})
	}
	a.PostAt(0, ping)
}

func TestGroupPingPongMatchesSequential(t *testing.T) {
	const n = 50
	d01, d10 := 5*Nanosecond, 7*Nanosecond

	// Reference: both endpoints on one standalone engine (Send degrades to
	// Post when src == dst, so the same wiring runs sequentially).
	seq := NewEngine()
	var want []string
	pingPong(seq, seq, d01, d10, n, &want)
	seq.Run()

	for _, serial := range []bool{true, false} {
		g := NewGroup(2)
		g.SetSerial(serial)
		g.Lane(0).SetLookahead(d01)
		g.Lane(1).SetLookahead(d10)
		var got []string
		// marks is appended from two goroutines in parallel mode — but
		// never concurrently: lane a marks only while lane b is idle at a
		// barrier and vice versa (the token alternates). The race detector
		// double-checks that claim.
		pingPong(g.Lane(0), g.Lane(1), d01, d10, n, &got)
		g.Run()
		if len(got) != len(want) {
			t.Fatalf("serial=%v: %d marks, want %d", serial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("serial=%v: mark %d = %q, want %q", serial, i, got[i], want[i])
			}
		}
		if got := g.Stats().TieCrossSends; got != 0 {
			t.Fatalf("serial=%v: TieCrossSends = %d, want 0", serial, got)
		}
	}
}

func TestBucketFallbackZeroLookahead(t *testing.T) {
	// Zero declared lookahead and zero-delay sends: every round must
	// degrade to a time-bucketed barrier, and a same-timestamp cross-lane
	// chain must still run to completion without time advancing.
	g := NewGroup(2)
	count := 0
	var step func()
	step = func() {
		me, other := g.Lane(count%2), g.Lane((count+1)%2)
		count++
		if count >= 10 {
			return
		}
		me.Send(other, 0, step)
	}
	g.Lane(0).PostAt(100, step)
	g.Run()
	if count != 10 {
		t.Fatalf("chain ran %d steps, want 10", count)
	}
	if now := g.Now(); now != 100 {
		t.Fatalf("home clock = %v, want 100ps (chain is same-timestamp)", now)
	}
	st := g.Stats()
	if st.BucketRounds == 0 {
		t.Fatalf("expected bucket rounds with zero lookahead, stats = %+v", st)
	}
	if st.Rounds != st.BucketRounds {
		t.Fatalf("every round should have been a bucket round: %+v", st)
	}
}

func TestBucketFallbackOnCollapsedHorizon(t *testing.T) {
	// One lane declares generous lookahead, the other zero: the horizon
	// collapses onto tmin whenever the zero-lookahead lane has the
	// earliest event, and the group must fall back rather than deadlock
	// or mis-deliver.
	g := NewGroup(2)
	g.Lane(0).SetLookahead(10 * Nanosecond)
	// Lane 1 keeps the default zero lookahead and sends with zero delay.
	fired := 0
	g.Lane(1).PostAt(5, func() {
		g.Lane(1).Send(g.Lane(0), 0, func() { fired++ })
	})
	g.Lane(0).PostAt(5, func() {})
	g.Run()
	if fired != 1 {
		t.Fatalf("cross event fired %d times, want 1", fired)
	}
	if st := g.Stats(); st.BucketRounds == 0 {
		t.Fatalf("expected a bucket round, stats = %+v", st)
	}
}

func TestLookaheadViolationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected a lookahead-violation panic")
		}
	}()
	g := NewGroup(2)
	g.SetSerial(true)
	g.Lane(0).SetLookahead(5 * Nanosecond)
	g.Lane(1).SetLookahead(5 * Nanosecond)
	// Both lanes have events at t=0, so the horizon is 5ns and both fire
	// their full window. Lane 1's send with delay 1ns < lookahead arrives
	// inside the window lane 0 already executed — the unrecoverable case
	// the delivery check must catch.
	g.Lane(0).PostAt(0, func() {})
	g.Lane(1).PostAt(0, func() {
		g.Lane(1).Send(g.Lane(0), 1*Nanosecond, func() {})
	})
	g.Run()
}

func TestSendAcrossUngroupedEnginesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected a panic for a cross-engine send outside a group")
		}
	}()
	a, b := NewEngine(), NewEngine()
	a.Send(b, 0, func() {})
}

// synthLaneLoad drives lanes with a seeded mixed load: dense local event
// chains plus cross-lane sends at or above the declared lookahead, with
// all scheduling decisions derived from a deterministic LCG. It is the
// j1-vs-jN workhorse: any scheduling nondeterminism shows up as a
// fingerprint mismatch.
func synthLaneLoad(g *Group, la Time, events int) {
	for i := 0; i < g.Lanes(); i++ {
		g.Lane(i).SetLookahead(la)
		ln := g.Lane(i)
		state := uint64(i*2654435761 + 12345)
		next := func() uint64 {
			state = state*6364136223846793005 + 1442695040888963407
			return state >> 33
		}
		remaining := events
		var chain func()
		chain = func() {
			if remaining == 0 {
				return
			}
			remaining--
			r := next()
			if r%8 == 0 {
				dst := g.Lane(int(r/8) % g.Lanes())
				d := la + Time(r%1000)
				ln.Send(dst, d, func() {})
			}
			ln.Post(Time(1+r%200), chain)
		}
		ln.PostAt(Time(i), chain)
	}
}

func TestSerialParallelStreamsIdentical(t *testing.T) {
	const lanes, events = 8, 400
	la := 100 * Nanosecond

	run := func(serial bool) (string, GroupStats) {
		g := NewGroup(lanes)
		g.SetSerial(serial)
		recs := recordLanes(g)
		synthLaneLoad(g, la, events)
		g.Run()
		return fingerprint(recs), g.Stats()
	}
	serialFP, _ := run(true)
	parallelFP, pst := run(false)
	if serialFP != parallelFP {
		t.Fatalf("per-lane event streams diverge between serial and parallel rounds:\nserial:   %s\nparallel: %s", serialFP, parallelFP)
	}
	if pst.ParallelRounds == 0 {
		t.Fatalf("parallel run dispatched no parallel rounds: %+v", pst)
	}
}

func TestGroupRunUntilClockSemantics(t *testing.T) {
	// Drained before the deadline: every lane's clock lands exactly on
	// the deadline, like a sequential engine's.
	g := NewGroup(3)
	g.Lane(1).PostAt(10, func() {})
	g.RunUntil(1000)
	for i := 0; i < g.Lanes(); i++ {
		if now := g.Lane(i).Now(); now != 1000 {
			t.Fatalf("drained: lane %d clock = %v, want 1000", i, now)
		}
	}

	// Events remain past the deadline: the clock reads the latest fired
	// timestamp, and the survivors fire on the next call.
	g = NewGroup(2)
	fired := 0
	g.Lane(1).PostAt(10, func() { fired++ })
	g.Lane(1).PostAt(5000, func() { fired++ })
	end := g.RunUntil(1000)
	if end != 10 || fired != 1 {
		t.Fatalf("RunUntil = %v (fired %d), want 10ps with 1 fired", end, fired)
	}
	if now := g.Lane(0).Now(); now != 10 {
		t.Fatalf("home clock = %v, want 10 (aligned to latest fired)", now)
	}
	g.RunUntil(5000)
	if fired != 2 {
		t.Fatalf("survivor did not fire on the next RunUntil")
	}
}

func TestGroupRunWhileStopsAtHomeEvent(t *testing.T) {
	// cond flips when the third home event fires; the home clock must
	// stop exactly there even though later home events are pending.
	g := NewGroup(2)
	g.Lane(0).SetLookahead(Nanosecond)
	g.Lane(1).SetLookahead(Nanosecond)
	homeFired := 0
	for i := 1; i <= 6; i++ {
		g.Lane(0).PostAt(Time(i*100), func() { homeFired++ })
	}
	// Device-lane noise inside the same windows.
	for i := 1; i <= 6; i++ {
		g.Lane(1).PostAt(Time(i*100+50), func() {})
	}
	g.RunWhile(func() bool { return homeFired < 3 })
	if homeFired != 3 {
		t.Fatalf("home fired %d events, want exactly 3", homeFired)
	}
	if now := g.Now(); now != 300 {
		t.Fatalf("home clock = %v, want 300 (the flipping event)", now)
	}
	// The remaining home events fire on the next run call.
	g.Run()
	if homeFired != 6 {
		t.Fatalf("home fired %d events after drain, want 6", homeFired)
	}
}

func TestTieCrossSendCounter(t *testing.T) {
	// Two source lanes send to lane 0 with arrivals at the same
	// timestamp: delivery order is lane order and the tie counter
	// records the ambiguity.
	var order []int
	g := NewGroup(3)
	g.SetSerial(true)
	for i := 1; i <= 2; i++ {
		i := i
		ln := g.Lane(i)
		ln.PostAt(0, func() {
			ln.Send(g.Lane(0), 10*Nanosecond, func() { order = append(order, i) })
		})
	}
	g.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("tie delivery order = %v, want [1 2] (lane order)", order)
	}
	if ties := g.Stats().TieCrossSends; ties != 1 {
		t.Fatalf("TieCrossSends = %d, want 1", ties)
	}
}

func TestSendSameEngineIsPost(t *testing.T) {
	e := NewEngine()
	var order []string
	e.PostAt(0, func() {
		e.Send(e, 10, func() { order = append(order, "send") })
		e.Post(10, func() { order = append(order, "post") })
		e.SendArg(e, 10, func(a any) { order = append(order, a.(string)) }, "sendarg")
	})
	e.Run()
	want := []string{"send", "post", "sendarg"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v (same-engine Send must keep Post's FIFO tie-break)", order, want)
		}
	}
}

func TestHomeOnlyRoundsStayInline(t *testing.T) {
	// A group whose device lanes are idle must never dispatch to workers:
	// -lanes N with a cold device is the common case and must not pay
	// synchronization for it.
	g := NewGroup(4)
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < 1000 {
			g.Lane(0).Post(10, chain)
		}
	}
	g.Lane(0).PostAt(0, chain)
	g.Run()
	if n != 1000 {
		t.Fatalf("ran %d events, want 1000", n)
	}
	if st := g.Stats(); st.ParallelRounds != 0 {
		t.Fatalf("home-only run used parallel rounds: %+v", st)
	}
}

func TestGroupReentrantRunPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected a panic for a re-entrant run call")
		}
	}()
	g := NewGroup(1)
	g.Lane(0).PostAt(0, func() { g.Run() })
	g.Run()
}
