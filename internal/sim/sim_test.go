package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Microsecond != 1_000_000*Picosecond {
		t.Fatalf("microsecond = %d ps", int64(Microsecond))
	}
	if got := Micro(10.9); got != 10_900_000*Picosecond {
		t.Fatalf("Micro(10.9) = %d", int64(got))
	}
	if got := Nano(77.16); got != 77_160*Picosecond {
		t.Fatalf("Nano(77.16) = %d", int64(got))
	}
}

func TestCycleConversion(t *testing.T) {
	if CyclePS != 357 {
		t.Fatalf("cycle = %d ps, want 357", int64(CyclePS))
	}
	if got := Cycles(97); got != 97*357 {
		t.Fatalf("Cycles(97) = %d", int64(got))
	}
	if got := Cycles(97).ToCycles(); got != 97 {
		t.Fatalf("round-trip 97 cycles = %d", got)
	}
	if got := Time(0).ToCycles(); got != 0 {
		t.Fatalf("0 ToCycles = %d", got)
	}
}

func TestCyclesRoundTripProperty(t *testing.T) {
	f := func(n int32) bool {
		c := int64(n % 1_000_000)
		return Cycles(c).ToCycles() == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ps"},
		{Nano(77.16), "77.16ns"},
		{Micro(10.9), "10.90us"},
		{4 * Millisecond, "4.000ms"},
		{2 * Second, "2.000s"},
		{-Micro(1), "-1.00us"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	// Same timestamp: FIFO.
	e.At(20, func() { order = append(order, 4) })
	e.Run()
	want := []int{1, 2, 4, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("now = %d", e.Now())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	var tick func()
	tick = func() {
		ticks = append(ticks, e.Now())
		if len(ticks) < 5 {
			e.After(100, tick)
		}
	}
	e.At(0, tick)
	e.Run()
	if len(ticks) != 5 || ticks[4] != 400 {
		t.Fatalf("ticks = %v", ticks)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	if !ev.Pending() {
		t.Fatal("event should be pending")
	}
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	ev.Cancel() // double-cancel is a no-op
}

func TestEnginePastSchedulingClamps(t *testing.T) {
	e := NewEngine()
	var at Time = -1
	e.At(100, func() {
		e.At(50, func() { at = e.Now() }) // in the past
	})
	e.Run()
	if at != 100 {
		t.Fatalf("past event fired at %d, want 100", at)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, ts := range []Time{10, 20, 30, 40} {
		ts := ts
		e.At(ts, func() { fired = append(fired, ts) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired = %v", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("now = %d", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired = %v", fired)
	}
	// Queue empty: clock advances to the deadline.
	e.RunUntil(200)
	if e.Now() != 200 {
		t.Fatalf("now = %d, want 200", e.Now())
	}
}

func TestEngineRunUntilInclusive(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(25, func() { n++ })
	e.RunUntil(25)
	if n != 1 {
		t.Fatal("event at deadline should fire")
	}
}

func TestEngineHeapProperty(t *testing.T) {
	// Random schedules always fire in nondecreasing time order.
	f := func(seed uint64) bool {
		r := NewRand(seed)
		e := NewEngine()
		var times []Time
		for i := 0; i < 200; i++ {
			ts := Time(r.Intn(1000))
			e.At(ts, func() { times = append(times, e.Now()) })
		}
		e.Run()
		return sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] }) && len(times) == 200
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d times", same)
	}
}

func TestRandFork(t *testing.T) {
	r := NewRand(7)
	s1 := r.Fork(1)
	r2 := NewRand(7)
	_ = r2.Uint64() // Fork consumed one draw
	s1b := NewRand(7).Fork(1)
	if s1.Uint64() != s1b.Uint64() {
		t.Fatal("fork not deterministic")
	}
}

func TestRandUniformity(t *testing.T) {
	r := NewRand(99)
	const n = 100000
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, b := range buckets {
		if b < n/10-n/50 || b > n/10+n/50 {
			t.Fatalf("bucket %d = %d, not uniform", i, b)
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(3.0)
	}
	mean := sum / n
	if mean < 2.9 || mean > 3.1 {
		t.Fatalf("exp mean = %f, want ~3.0", mean)
	}
}

func TestRandNormMoments(t *testing.T) {
	r := NewRand(6)
	var sum, sq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	varr := sq/n - mean*mean
	if mean < 9.95 || mean > 10.05 {
		t.Fatalf("norm mean = %f", mean)
	}
	if varr < 3.8 || varr > 4.2 {
		t.Fatalf("norm var = %f", varr)
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(1)
	p := r.Perm(50)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad perm %v", p)
		}
		seen[v] = true
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRand(1).Intn(0)
}
