// Package sim provides the discrete-event simulation substrate shared by
// every other module: a picosecond-resolution virtual clock, an event queue,
// and a deterministic random number generator.
//
// All latencies in the system are expressed as sim.Time (int64 picoseconds).
// One CPU cycle at the modeled 2.8 GHz clock is 357 ps, so cycle-level
// quantities from the paper (e.g. the 97-cycle page-table update in
// Fig. 11(b)) convert exactly.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in (or duration of) virtual time, in picoseconds.
type Time int64

// Common duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Never is the sentinel for "no deadline" / "not scheduled". It is the
// only negative Time with sanctioned uses.
const Never Time = -1

// DefaultClockHz is the modeled CPU frequency (Intel Xeon E5-2640 v3,
// Table II of the paper).
const DefaultClockHz = 2_800_000_000

// CyclePS is the duration of one CPU cycle in picoseconds at DefaultClockHz,
// rounded to the nearest picosecond (357 ps).
const CyclePS = Time(1_000_000_000_000 / DefaultClockHz)

// Cycles converts a CPU-cycle count into a duration at the default clock.
func Cycles(n int64) Time { return Time(n) * CyclePS }

// ToCycles converts a duration into CPU cycles at the default clock,
// rounding to nearest.
func (t Time) ToCycles() int64 {
	if t < 0 {
		return -((-t + CyclePS/2) / CyclePS).int64()
	}
	return ((t + CyclePS/2) / CyclePS).int64()
}

func (t Time) int64() int64 { return int64(t) }

// Nanos returns the duration in (fractional) nanoseconds.
func (t Time) Nanos() float64 { return float64(t) / float64(Nanosecond) }

// Micros returns the duration in (fractional) microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Seconds returns the duration in (fractional) seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micro builds a duration from fractional microseconds. It is the idiomatic
// constructor for calibration constants quoted in µs by the paper.
func Micro(us float64) Time { return Time(us * float64(Microsecond)) }

// Nano builds a duration from fractional nanoseconds.
func Nano(ns float64) Time { return Time(ns * float64(Nanosecond)) }

// Milli builds a duration from fractional milliseconds.
func Milli(ms float64) Time { return Time(ms * float64(Millisecond)) }

// FromDuration rescales a standard-library time.Duration (nanoseconds)
// into sim.Time (picoseconds). Converting with a plain sim.Time(d) is a
// silent 1000x error; the simtime analyzer rejects it and points here.
func FromDuration(d time.Duration) Time { return Time(d) * Time(Nanosecond) }

// String renders the time with an adaptive unit, for logs and test output.
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.2fns", t.Nanos())
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}
