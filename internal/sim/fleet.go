package sim

// Fleet-shaped lane benchmark model, shared by the package benchmarks
// (lane_bench_test.go) and the hwdpbench -bench suite, so the number CI
// tracks and the number `go test -bench` prints come from the same event
// population.
//
// Each stream replays the event-time profile of one tenant machine running
// the Fig-13 mixed workload (FIO/DBBench/YCSB at 2:1 dataset:memory): 16
// concurrent miss pipelines, each cycling through six 200-400 ns CPU/SMU
// phase events, one 9-11 µs media wait (Z-SSD reads dominate the mix) and
// three 100-300 ns completion-handling events. Streams exchange
// fleet-level rebalance notes every 64 completions with a 50-60 µs delay —
// the multi-tenant shape from the ROADMAP's fleet-scale item, where
// cross-domain lookahead is epoch-scale rather than doorbell-scale. The
// stream count is fixed regardless of lane count, so every variant
// simulates the identical event population and wall-clock ratios are pure
// scheduler speedup.
//
// The full-system machine (core.Config.Lanes) syncs at the ns-scale
// doorbell boundary instead, where rounds are too fine for wall-clock
// gains; see docs/ENGINE.md for why the two shapes differ.

const (
	fleetStreams   = 8
	fleetPipes     = 16
	fleetRebalance = 64
)

// fleetStream is one tenant's event stream.
type fleetStream struct {
	eng    *Engine
	peerE  *Engine      // next tenant's lane (ring)
	peerS  *fleetStream // next tenant's stream state
	lcg    uint64
	hash   uint64 // FNV-style fold of this stream's fired-event times
	comps  uint64 // completed pipeline cycles
	rebal  uint64 // rebalance notes received
	stepFn func(any)
	noteFn func(any)
}

// fleetPipe is one in-flight miss pipeline of a stream.
type fleetPipe struct {
	st    *fleetStream
	stage int
}

func (st *fleetStream) rand(span uint64) uint64 {
	st.lcg = st.lcg*6364136223846793005 + 1442695040888963407
	return (st.lcg >> 33) % span
}

func (st *fleetStream) mark() {
	st.hash = st.hash*0x100000001b3 ^ uint64(st.eng.Now())
}

// step advances one pipeline through the fig13 stage mix.
func (st *fleetStream) step(a any) {
	p := a.(*fleetPipe)
	st.mark()
	var d Time
	switch {
	case p.stage < 6: // CPU/SMU phases: walk, PMSHR, doorbell, ...
		d = Time(200_000 + st.rand(200_000)) // 200-400 ns
	case p.stage == 6: // media wait
		d = Time(9_000_000 + st.rand(2_000_000)) // 9-11 µs
	default: // completion handling
		d = Time(100_000 + st.rand(200_000)) // 100-300 ns
	}
	p.stage++
	if p.stage == 10 {
		p.stage = 0
		st.comps++
		if st.comps%fleetRebalance == 0 && st.peerE != nil {
			// Fleet-level rebalance note to the ring neighbor; the 50 µs
			// floor is the group's declared lookahead.
			st.eng.SendArg(st.peerE, Time(50_000_000+st.rand(10_000_000)),
				st.peerS.noteFn, nil)
		}
	}
	st.eng.PostArg(d, st.stepFn, p)
}

func (st *fleetStream) note(any) {
	st.mark()
	st.rebal++
}

// FleetResult carries everything a caller needs to judge a fleet run:
// throughput inputs (Fired), scheduler shape (Stats) and per-stream
// determinism fingerprints (two runs at different lane counts must agree on
// every slice element).
type FleetResult struct {
	Fired  uint64
	Stats  GroupStats
	Hashes []uint64 // per-stream FNV folds of fired-event times
	Comps  []uint64 // per-stream completed pipeline cycles
	Rebal  []uint64 // per-stream rebalance notes received
}

// buildFleet wires fleetStreams tenants onto a lane group (streams
// round-robin across lanes; lanes=1 is the sequential baseline) and kicks
// every pipeline off at staggered start times.
func buildFleet(lanes int) (*Group, []*fleetStream) {
	g := NewGroup(lanes)
	for i := 0; i < lanes; i++ {
		g.Lane(i).SetLookahead(Micro(50))
	}
	streams := make([]*fleetStream, fleetStreams)
	for i := range streams {
		st := &fleetStream{
			eng: g.Lane(i % lanes),
			lcg: uint64(i)*0x9e3779b97f4a7c15 + 0xdeadbeef,
		}
		st.stepFn = st.step
		st.noteFn = st.note
		streams[i] = st
	}
	for i, st := range streams {
		next := streams[(i+1)%len(streams)]
		st.peerE, st.peerS = next.eng, next
	}
	for i, st := range streams {
		for p := 0; p < fleetPipes; p++ {
			st.eng.AtArg(Time((i*fleetPipes+p)*37_000), st.stepFn, &fleetPipe{st: st})
		}
	}
	return g, streams
}

// RunFleet drives the fleet-shaped event population for a fixed virtual
// duration on the given lane count and returns the run's fingerprints.
// Fixed inputs give byte-identical FleetResult fingerprints at every lane
// count — that equivalence is what TestLaneBenchmarkDeterministic pins.
func RunFleet(lanes int, virtual Time) FleetResult {
	g, streams := buildFleet(lanes)
	g.RunUntil(virtual)
	res := FleetResult{Fired: g.Fired(), Stats: g.Stats()}
	for _, st := range streams {
		res.Hashes = append(res.Hashes, st.hash)
		res.Comps = append(res.Comps, st.comps)
		res.Rebal = append(res.Rebal, st.rebal)
	}
	return res
}
