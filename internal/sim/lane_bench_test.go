package sim

// Lane-scheduler throughput benchmark on the Fig-13-shaped fleet model
// (fleet.go; hwdpbench -bench runs the same population and records the
// lanes variant as the sim_events_per_sec unit in BENCH_hwdp.json).
//
// Wall-clock speedup is bounded by min(lanes, GOMAXPROCS): the schedule
// itself parallelizes fully (TestLaneBenchmarkDeterministic asserts every
// round runs parallel at 8 lanes), but on a single hardware thread the
// only gain left is the smaller per-lane heaps.

import (
	"fmt"
	"testing"
)

func benchmarkLaneFleet(b *testing.B, lanes int) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		events += RunFleet(lanes, Milli(5)).Fired
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "sim-events/s")
}

// BenchmarkLaneFig13Mix measures sim-events/s of the Fig-13 mixed event
// population at 1, 2, 4 and 8 lanes.
func BenchmarkLaneFig13Mix(b *testing.B) {
	for _, lanes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			benchmarkLaneFleet(b, lanes)
		})
	}
}

// TestLaneBenchmarkDeterministic is the Test wrapper for the lane bench
// (PR 3 convention: every bench model gets a correctness wrapper): the
// same stream population must produce identical per-stream event-time
// hashes and counters at every lane count, and must actually run rounds in
// parallel at 8 lanes.
func TestLaneBenchmarkDeterministic(t *testing.T) {
	virtual := Milli(2)
	seq := RunFleet(1, virtual)
	if seq.Fired == 0 {
		t.Fatal("benchmark model fired no events")
	}
	for _, lanes := range []int{2, 8} {
		res := RunFleet(lanes, virtual)
		if res.Fired != seq.Fired {
			t.Fatalf("lanes=%d fired %d events, sequential fired %d", lanes, res.Fired, seq.Fired)
		}
		for i := range res.Hashes {
			if res.Hashes[i] != seq.Hashes[i] || res.Comps[i] != seq.Comps[i] || res.Rebal[i] != seq.Rebal[i] {
				t.Fatalf("lanes=%d stream %d diverged: hash %x/%x comps %d/%d rebal %d/%d",
					lanes, i, res.Hashes[i], seq.Hashes[i], res.Comps[i], seq.Comps[i], res.Rebal[i], seq.Rebal[i])
			}
		}
		if lanes == 8 {
			if res.Stats.ParallelRounds == 0 || res.Stats.CrossSends == 0 {
				t.Fatalf("8-lane run did not parallelize: %+v", res.Stats)
			}
		}
	}
}

// TestLaneBenchmarkRebalancesFlow asserts the cross-lane path of the bench
// model carries real traffic (a silent misroute would turn the benchmark
// into an embarrassingly-parallel lie).
func TestLaneBenchmarkRebalancesFlow(t *testing.T) {
	res := RunFleet(8, Milli(5))
	var rebal uint64
	for _, n := range res.Rebal {
		rebal += n
	}
	if rebal == 0 {
		t.Fatal("no rebalance notes delivered")
	}
	if res.Stats.CrossSends < rebal {
		t.Fatalf("group counted %d cross sends for %d delivered notes", res.Stats.CrossSends, rebal)
	}
}
