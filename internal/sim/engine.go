package sim

// Event is a scheduled callback. Events with equal times fire in the order
// they were scheduled (stable FIFO tie-break), which keeps runs
// deterministic.
//
// Events created by At/After are caller-visible handles (Cancel/Pending)
// and live until the garbage collector takes them. Events created by the
// Post* family never escape the engine, so they are recycled through an
// internal free list: steady-state scheduling on the hot path performs no
// allocations.
type Event struct {
	at  Time
	seq uint64

	// Exactly one of fn and afn is set. afn carries its argument in arg so
	// call sites can schedule a pre-bound method value without building a
	// fresh closure per event (the engine-side half of the zero-allocation
	// schedule/fire path).
	fn  func()
	afn func(any)
	arg any

	idx    int
	dead   bool
	pooled bool
}

// Cancel prevents a pending event from firing. Canceling an event that has
// already fired (or was already canceled) is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.dead = true
	}
}

// Pending reports whether the event is still scheduled to fire.
func (e *Event) Pending() bool { return e != nil && !e.dead && e.idx >= 0 }

// Engine is a single-threaded discrete-event simulator. It owns the virtual
// clock; all model components schedule work on it and must only be touched
// from event callbacks (or before Run).
//
// The queue is an indexed 4-ary min-heap specialized to *Event: compared to
// container/heap it avoids the interface boxing on every push/pop and the
// Less/Swap indirection, and the wider fan-out halves the tree depth for
// the sift-down that dominates pop.
type Engine struct {
	now   Time
	seq   uint64
	queue []*Event
	free  []*Event
	fired uint64

	// Lane plumbing (nil/zero for a standalone engine). A grouped engine is
	// one lane of a Group: lane is its index, lookahead lower-bounds the
	// delay of every cross-lane send it will ever make, and outbox[dst]
	// buffers sends to lane dst until the group's end-of-round drain. obSeq
	// numbers this lane's sends so the drain's merge order is stable.
	grp       *Group
	lane      int
	lookahead Time
	outbox    []([]xmsg)
	obSeq     uint64

	// obs, when set, observes every fired event's timestamp. Tests use it
	// to hash per-lane event streams for engine-equivalence checks.
	obs func(Time)
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Lane returns this engine's lane index within its Group (0 for a
// standalone engine and for the home lane).
func (e *Engine) Lane() int { return e.lane }

// Group returns the lane group this engine belongs to, or nil for a
// standalone engine.
func (e *Engine) Group() *Group { return e.grp }

// Lookahead returns the declared cross-lane send floor (see SetLookahead).
func (e *Engine) Lookahead() Time { return e.lookahead }

// SetLookahead declares that every future cross-lane send from this engine
// uses a delay of at least l. The group uses the declaration to compute
// each round's horizon; a send below it is a protocol violation and panics
// at delivery. Zero (the default) is always safe and degrades the group to
// time-bucketed barrier rounds whenever this lane has pending events.
func (e *Engine) SetLookahead(l Time) {
	if l < 0 {
		l = 0
	}
	e.lookahead = l
}

// SetObserver installs fn to be called with every fired event's timestamp
// (nil uninstalls). Equivalence tests use it to fingerprint the per-lane
// event stream; production paths leave it nil.
func (e *Engine) SetObserver(fn func(Time)) { e.obs = fn }

// Fired returns the number of events executed so far (useful for progress
// accounting and run limits in tests).
func (e *Engine) Fired() uint64 { return e.fired }

// alloc takes an event from the free list, or the heap allocator when the
// list is empty.
//
//hwdp:pool acquire event
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &Event{}
}

// recycle clears a pooled event and returns it to the free list. Handle
// events (At/After) are not recycled: the caller may hold the pointer
// indefinitely, and reusing it would let a stale Cancel kill an unrelated
// event.
//
//hwdp:pool release event
func (e *Engine) recycle(ev *Event) {
	if !ev.pooled {
		return
	}
	*ev = Event{pooled: true}
	e.free = append(e.free, ev)
}

// schedule clamps t to the current time and pushes the event.
func (e *Engine) schedule(ev *Event, t Time) {
	if t < e.now {
		t = e.now
	}
	ev.at = t
	ev.seq = e.seq
	e.seq++
	ev.idx = len(e.queue)
	//hwdp:ignore hotalloc queue growth is amortized: the heap reaches steady-state capacity and append stops allocating
	e.queue = append(e.queue, ev)
	e.siftUp(ev.idx)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) clamps to Now: the event fires on the current timestep, after
// already-pending events for that time. The returned handle supports
// Cancel and Pending.
func (e *Engine) At(t Time, fn func()) *Event {
	ev := &Event{fn: fn}
	e.schedule(ev, t)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Event { return e.At(e.now+d, fn) }

// AtArg schedules fn(arg) at absolute time t and returns a cancelable
// handle. Unlike At it takes the callback and its context separately, so a
// call site that would otherwise build a one-pointer closure per event can
// pass a method value bound once at construction instead.
func (e *Engine) AtArg(t Time, fn func(any), arg any) *Event {
	ev := &Event{afn: fn, arg: arg}
	e.schedule(ev, t)
	return ev
}

// AtArgPooled is AtArg with engine-recycled storage: the returned handle is
// valid only until the event fires or its cancellation is collected, after
// which the engine reuses the Event for a future Post*/pooled call. The
// caller must drop the handle when the callback runs and immediately after
// Cancel; retaining it past either point aliases an unrelated event.
// Model components use it for per-operation timeouts and completions whose
// holder discipline guarantees exactly that (the handle lives in a record
// that is itself reset at fire/cancel time).
//
//hwdp:hotpath
func (e *Engine) AtArgPooled(t Time, fn func(any), arg any) *Event {
	ev := e.alloc()
	ev.pooled = true
	ev.afn = fn
	ev.arg = arg
	e.schedule(ev, t)
	return ev
}

// Post schedules fn to run d after the current time, fire-and-forget: no
// handle is returned, and the event's storage is recycled after it fires.
// This is the zero-allocation-steady-state variant of After for call sites
// that never Cancel.
//
//hwdp:hotpath
func (e *Engine) Post(d Time, fn func()) {
	ev := e.alloc()
	ev.pooled = true
	ev.fn = fn
	e.schedule(ev, e.now+d)
}

// PostAt is Post with an absolute deadline.
//
//hwdp:hotpath
func (e *Engine) PostAt(t Time, fn func()) {
	ev := e.alloc()
	ev.pooled = true
	ev.fn = fn
	e.schedule(ev, t)
}

// PostArg schedules fn(arg) d after the current time, fire-and-forget.
// Combined with a pre-bound method value it makes the whole schedule/fire
// path allocation-free: no event, no closure, and no interface boxing for
// pointer-shaped args.
//
//hwdp:hotpath
func (e *Engine) PostArg(d Time, fn func(any), arg any) {
	ev := e.alloc()
	ev.pooled = true
	ev.afn = fn
	ev.arg = arg
	e.schedule(ev, e.now+d)
}

// Step fires the next pending event, advancing the clock to its timestamp.
// It returns false when the queue is empty.
//
//hwdp:hotpath
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.pop()
		if ev.dead {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.fired++
		if e.obs != nil {
			e.obs(ev.at)
		}
		fn, afn, arg := ev.fn, ev.afn, ev.arg
		// Recycle before the callback runs so the callback's own scheduling
		// can reuse the slot.
		e.recycle(ev)
		if afn != nil {
			afn(arg)
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run fires events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events until the queue drains or the clock would pass
// deadline. Events scheduled exactly at deadline still fire. It returns the
// clock value on exit.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.queue) > 0 {
		// Peek: the root is the earliest event, but it may be dead; Step
		// handles skipping, so pre-check only live roots.
		if e.queue[0].at > deadline {
			if e.queue[0].dead {
				e.recycle(e.pop())
				continue
			}
			break
		}
		if !e.Step() {
			break
		}
	}
	if e.now < deadline && len(e.queue) == 0 {
		e.now = deadline
	}
	return e.now
}

// Pending returns the number of events in the queue, including canceled
// events not yet collected.
func (e *Engine) Pending() int { return len(e.queue) }

// less orders events by time, then schedule order. (at, seq) is a strict
// total order — seq is unique — so any heap yields the same pop sequence
// and determinism does not depend on heap shape.
func less(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// pop removes and returns the heap root.
func (e *Engine) pop() *Event {
	root := e.queue[0]
	root.idx = -1
	n := len(e.queue) - 1
	last := e.queue[n]
	e.queue[n] = nil
	e.queue = e.queue[:n]
	if n > 0 {
		e.queue[0] = last
		last.idx = 0
		e.siftDown(0)
	}
	return root
}

// siftUp restores the heap property from index i toward the root.
func (e *Engine) siftUp(i int) {
	ev := e.queue[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !less(ev, e.queue[p]) {
			break
		}
		e.queue[i] = e.queue[p]
		e.queue[i].idx = i
		i = p
	}
	e.queue[i] = ev
	ev.idx = i
}

// siftDown restores the heap property from index i toward the leaves.
func (e *Engine) siftDown(i int) {
	ev := e.queue[i]
	n := len(e.queue)
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(e.queue[j], e.queue[m]) {
				m = j
			}
		}
		if !less(e.queue[m], ev) {
			break
		}
		e.queue[i] = e.queue[m]
		e.queue[i].idx = i
		i = m
	}
	e.queue[i] = ev
	ev.idx = i
}
