package sim

import "container/heap"

// Event is a scheduled callback. Events with equal times fire in the order
// they were scheduled (stable FIFO tie-break), which keeps runs
// deterministic.
type Event struct {
	at   Time
	seq  uint64
	fn   func()
	idx  int
	dead bool
}

// Cancel prevents a pending event from firing. Canceling an event that has
// already fired (or was already canceled) is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.dead = true
	}
}

// Pending reports whether the event is still scheduled to fire.
func (e *Event) Pending() bool { return e != nil && !e.dead && e.idx >= 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It owns the virtual
// clock; all model components schedule work on it and must only be touched
// from event callbacks (or before Run).
type Engine struct {
	now   Time
	seq   uint64
	queue eventHeap
	fired uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (useful for progress
// accounting and run limits in tests).
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) clamps to Now: the event fires on the current timestep, after
// already-pending events for that time.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Event { return e.At(e.now+d, fn) }

// Step fires the next pending event, advancing the clock to its timestamp.
// It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events until the queue drains or the clock would pass
// deadline. Events scheduled exactly at deadline still fire. It returns the
// clock value on exit.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.queue) > 0 {
		// Peek: heap root is the earliest live event, but the root may be
		// dead; Step handles skipping, so pre-check only live roots.
		if e.queue[0].at > deadline {
			if e.queue[0].dead {
				heap.Pop(&e.queue)
				continue
			}
			break
		}
		if !e.Step() {
			break
		}
	}
	if e.now < deadline && len(e.queue) == 0 {
		e.now = deadline
	}
	return e.now
}

// Pending returns the number of events in the queue, including canceled
// events not yet collected.
func (e *Engine) Pending() int { return len(e.queue) }
