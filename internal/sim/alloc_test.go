package sim

import "testing"

// Allocation pins for the engine hot path. The Post* family and AtArgPooled
// promise zero steady-state allocations (events are recycled through the
// engine free list); these pins keep that promise from regressing silently.
// AllocsPerRun warms the pool with a first run before measuring, so the
// one-time pool growth does not count.

func TestPostAllocationBudget(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	got := testing.AllocsPerRun(1000, func() {
		e.Post(10, fn)
		e.Step()
	})
	if got != 0 {
		t.Fatalf("Post+Step allocates %.1f objects/op, want 0", got)
	}
}

func TestPostArgAllocationBudget(t *testing.T) {
	e := NewEngine()
	type ctx struct{ n int }
	c := &ctx{}
	fn := func(a any) { a.(*ctx).n++ }
	got := testing.AllocsPerRun(1000, func() {
		e.PostArg(10, fn, c)
		e.Step()
	})
	if got != 0 {
		t.Fatalf("PostArg+Step allocates %.1f objects/op, want 0", got)
	}
	if c.n == 0 {
		t.Fatal("callback never ran")
	}
}

func TestAtArgPooledAllocationBudget(t *testing.T) {
	e := NewEngine()
	type ctx struct{ n int }
	c := &ctx{}
	fn := func(a any) { a.(*ctx).n++ }
	got := testing.AllocsPerRun(1000, func() {
		ev := e.AtArgPooled(e.Now()+10, fn, c)
		_ = ev.Pending()
		e.Step()
	})
	if got != 0 {
		t.Fatalf("AtArgPooled+Step allocates %.1f objects/op, want 0", got)
	}
}

func TestPostOrderingMatchesAfter(t *testing.T) {
	// Post must observe the same (at, seq) total order as After: mixing the
	// two at equal timestamps fires in schedule order.
	e := NewEngine()
	var order []int
	e.After(20, func() { order = append(order, 1) })
	e.Post(20, func() { order = append(order, 2) })
	e.PostAt(20, func() { order = append(order, 3) })
	e.Post(10, func() { order = append(order, 0) })
	e.Run()
	want := []int{0, 1, 2, 3}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPostArgDeliversArgument(t *testing.T) {
	e := NewEngine()
	type payload struct{ v int }
	p := &payload{v: 41}
	e.PostArg(5, func(a any) { a.(*payload).v++ }, p)
	e.Run()
	if p.v != 42 {
		t.Fatalf("arg callback saw %d, want 42", p.v)
	}
}

func TestAtArgPooledCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.AtArgPooled(10, func(any) { fired = true }, nil)
	ev.Cancel()
	ev = nil // holder discipline: drop the handle immediately after Cancel
	e.Run()
	if fired {
		t.Fatal("canceled pooled event fired")
	}
}

func TestPooledEventRecycledAfterFire(t *testing.T) {
	// A pooled event's storage must be reused, and the reuse must not let
	// the earlier (dropped) handle affect the later event.
	e := NewEngine()
	ev1 := e.AtArgPooled(10, func(any) {}, nil)
	e.Run()
	ev2 := e.AtArgPooled(20, func(any) {}, nil)
	if ev1 != ev2 {
		t.Fatal("pooled event storage was not recycled after firing")
	}
	n := 0
	e.PostArg(5, func(any) { n++ }, nil)
	e.Run()
	if n != 1 {
		t.Fatalf("recycled event fired %d times, want 1", n)
	}
}

func TestCanceledPooledEventRecycledLazily(t *testing.T) {
	// A canceled pooled event stays in the queue (Cancel is O(1)) and is
	// recycled when the queue reaches it — without invoking the callback.
	e := NewEngine()
	fired := 0
	ev := e.AtArgPooled(10, func(any) { fired++ }, nil)
	ev.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (lazy collection)", e.Pending())
	}
	e.Post(20, func() {})
	e.Run()
	if fired != 0 {
		t.Fatal("canceled event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after drain", e.Pending())
	}
}

func TestHandleEventsNeverRecycled(t *testing.T) {
	// At/After handles may be retained forever; their storage must never
	// enter the pool, or a stale Cancel could kill an unrelated event.
	e := NewEngine()
	ev1 := e.After(10, func() {})
	e.Run()
	ev2 := e.After(10, func() {})
	if ev1 == ev2 {
		t.Fatal("handle event storage was recycled")
	}
	// Late cancel on the fired event must be harmless.
	ev1.Cancel()
	fired := false
	e.After(5, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("stale Cancel killed a live event")
	}
}

func TestRunUntilCollectsDeadRoots(t *testing.T) {
	// Dead events past the deadline are collected instead of blocking the
	// deadline check forever.
	e := NewEngine()
	ev := e.AtArgPooled(100, func(any) {}, nil)
	ev.Cancel()
	e.RunUntil(50)
	if e.Pending() != 0 {
		t.Fatalf("pending = %d, want 0 (dead root past deadline collected)", e.Pending())
	}
	if e.Now() != 50 {
		t.Fatalf("now = %d, want 50", e.Now())
	}
}
