package sim

import "testing"

func BenchmarkEngineScheduleAndFire(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%1000), func() {})
		if e.Pending() > 1024 {
			for e.Step() {
			}
		}
	}
	e.Run()
}

func BenchmarkEngineNestedChain(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(100, tick)
		}
	}
	e.At(0, tick)
	e.Run()
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkRandNorm(b *testing.B) {
	r := NewRand(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Norm(10, 2)
	}
	_ = sink
}
