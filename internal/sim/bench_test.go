package sim

import "testing"

func BenchmarkEngineScheduleAndFire(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%1000), func() {})
		if e.Pending() > 1024 {
			for e.Step() {
			}
		}
	}
	e.Run()
}

func BenchmarkEngineNestedChain(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(100, tick)
		}
	}
	e.At(0, tick)
	e.Run()
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkRandNorm(b *testing.B) {
	r := NewRand(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Norm(10, 2)
	}
	_ = sink
}

func BenchmarkEnginePostAndFire(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Post(Time(i%1000), fn)
		if e.Pending() > 1024 {
			for e.Step() {
			}
		}
	}
	e.Run()
}

func BenchmarkEnginePostArgAndFire(b *testing.B) {
	e := NewEngine()
	type ctx struct{ n int }
	c := &ctx{}
	fn := func(a any) { a.(*ctx).n++ }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.PostArg(Time(i%1000), fn, c)
		if e.Pending() > 1024 {
			for e.Step() {
			}
		}
	}
	e.Run()
}

// TestBenchmarkLoopsDrainCompletely asserts the correctness of the loop
// shape the engine benchmarks above share: every scheduled event fires
// exactly once and the queue is empty afterward.
func TestBenchmarkLoopsDrainCompletely(t *testing.T) {
	e := NewEngine()
	fired := 0
	fn := func() { fired++ }
	const n = 5000
	for i := 0; i < n; i++ {
		e.Post(Time(i%1000), fn)
		if e.Pending() > 1024 {
			for e.Step() {
			}
		}
	}
	e.Run()
	if fired != n {
		t.Fatalf("fired %d of %d events", fired, n)
	}
	if e.Pending() != 0 {
		t.Fatalf("queue not drained: %d pending", e.Pending())
	}
	if e.Fired() != n {
		t.Fatalf("Fired() = %d, want %d", e.Fired(), n)
	}
}
