package sim

import "math"

// Rand is a small, fast, deterministic PRNG (SplitMix64). Every simulated
// thread owns its own Rand seeded from the run seed and the thread ID, so
// results are reproducible regardless of event interleaving.
type Rand struct{ state uint64 }

// NewRand returns a generator for the given seed. Seed 0 is valid.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Fork derives an independent stream, e.g. one per thread.
func (r *Rand) Fork(stream uint64) *Rand {
	return NewRand(r.Uint64() ^ mix(stream+0x9e3779b97f4a7c15))
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix(r.state)
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). n must be positive.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with the given mean,
// used for service-time jitter in the device model.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Norm returns a normally distributed value (Box–Muller).
func (r *Rand) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Perm fills and returns a permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
