package hwdp_test

import (
	"fmt"
	"testing"

	"hwdp/internal/analysis/loader"
	"hwdp/internal/analysis/suite"
)

// TestLintClean is the tier-1 regression gate for the hwdplint analyzers:
// the whole module must type-check and produce zero unsuppressed
// diagnostics. A new wall-clock read, unpaired pool acquire, unit-less
// sim.Time constant, hot-path capturing closure, non-exhaustive status
// switch, allocation reachable from a //hwdp:hotpath root, or lane-unsafe
// site reachable from lane-hosted code fails this test — the same
// findings `make lint` reports, without needing the vettool binary
// (suite.RunAll summarizes callgraph facts in-process).
func TestLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("lint pass recompiles the module for export data; skipped in -short mode")
	}
	units, err := loader.Load(".", "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(units) == 0 {
		t.Fatal("loader returned no packages for ./...")
	}
	results, err := suite.RunAll(units)
	if err != nil {
		t.Fatalf("analyzing: %v", err)
	}
	var failures []string
	for _, r := range results {
		for _, d := range r.Diags {
			failures = append(failures,
				fmt.Sprintf("%s: %s [%s]", r.Unit.Fset.Position(d.Pos), d.Message, d.Analyzer))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			t.Error(f)
		}
		t.Fatalf("%d unsuppressed lint diagnostics (fix the code or add a "+
			"justified //hwdp:ignore; see docs/ANALYSIS.md)", len(failures))
	}
}
