package hwdp

import (
	"strings"
	"testing"
)

func faultyCfg(rules ...FaultRule) Config {
	cfg := det(HWDP)
	cfg.Faults = rules
	return cfg
}

func TestFaultyDeviceWorkloadCompletes(t *testing.T) {
	cfg := faultyCfg(
		FaultRule{Kind: FaultTransient, Prob: 0.1},
		FaultRule{Kind: FaultSpike, Prob: 0.02, SpikeFactor: 5},
	)
	sys := New(cfg)
	res, err := sys.RunFIO(2, 300, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 600 {
		t.Fatalf("ops = %d", res.Ops)
	}
	rec := sys.Recovery()
	if rec.InjectedTransient == 0 {
		t.Fatalf("nothing injected: %+v", rec)
	}
	if rec.SMURetries == 0 && rec.BlockRetries == 0 {
		t.Fatalf("no layer retried: %+v", rec)
	}
	if vs := sys.CheckInvariants(); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestSMUPathOnlyFaultsDegradeToOS(t *testing.T) {
	// 100% retryable failures on the hardware path only: every HW miss
	// must degrade to the OS fallback — slower, but never stuck and never
	// fatal.
	sys := New(faultyCfg(FaultRule{Kind: FaultTransient, Prob: 1, SMUPathOnly: true}))
	res, err := sys.RunFIO(2, 200, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 400 {
		t.Fatalf("ops = %d", res.Ops)
	}
	rec := sys.Recovery()
	if rec.HWBounceFaults == 0 {
		t.Fatalf("no walk degraded to the OS path: %+v", rec)
	}
	if rec.SIGBUSKills != 0 {
		t.Fatalf("retryable faults killed a thread: %+v", rec)
	}
	if rec.SMUFramesRecycled == 0 {
		t.Fatalf("failed HW walks recycled no frames: %+v", rec)
	}
	// OS-path I/O shares the device but not the faulty queue: it must not
	// see a single injection.
	if rec.BlockRetries != 0 || rec.BlockTimeouts != 0 {
		t.Fatalf("fault leaked onto the OS queues: %+v", rec)
	}
	if vs := sys.CheckInvariants(); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestDropRecoveryNeedsSMUTimeout(t *testing.T) {
	cfg := faultyCfg(FaultRule{Kind: FaultDrop, Prob: 0.05, SMUPathOnly: true, MaxInjections: 4})
	cfg.SMUCmdTimeoutUS = 200
	sys := New(cfg)
	if _, err := sys.RunFIO(2, 200, 4096); err != nil {
		t.Fatal(err)
	}
	rec := sys.Recovery()
	if rec.InjectedDrops == 0 {
		t.Fatalf("nothing dropped: %+v", rec)
	}
	if rec.SMUTimeouts == 0 {
		t.Fatalf("drops never recovered by timeout: %+v", rec)
	}
	if vs := sys.CheckInvariants(); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestRecoveryReportRendering(t *testing.T) {
	sys := New(faultyCfg(FaultRule{Kind: FaultTransient, Prob: 0.2}))
	if _, err := sys.RunFIO(1, 150, 2048); err != nil {
		t.Fatal(err)
	}
	s := sys.Recovery().String()
	for _, label := range []string{"injected transient", "SMU retries", "HW-bounced faults"} {
		if !strings.Contains(s, label) {
			t.Fatalf("report missing %q:\n%s", label, s)
		}
	}
}

func TestFaultInjectionDeterministic(t *testing.T) {
	run := func() (FIOResult, Stats, interface{}) {
		cfg := faultyCfg(
			FaultRule{Kind: FaultTransient, Prob: 0.1},
			FaultRule{Kind: FaultDrop, Prob: 0.01, SMUPathOnly: true},
			FaultRule{Kind: FaultSpike, Prob: 0.05},
		)
		cfg.SMUCmdTimeoutUS = 500
		sys := New(cfg)
		res, err := sys.RunFIO(2, 250, 4096)
		if err != nil {
			t.Fatal(err)
		}
		return res, sys.Stats(), sys.Recovery()
	}
	r1, s1, rec1 := run()
	r2, s2, rec2 := run()
	if r1 != r2 || s1 != s2 || rec1 != rec2 {
		t.Fatalf("same seed diverged:\n%+v\n%+v\n%+v\n%+v", r1, r2, rec1, rec2)
	}
}
