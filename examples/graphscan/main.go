// Graph analytics scenario: semi-external BFS over a memory-mapped
// adjacency file (the paper cites graph processing as a core consumer of
// memory-mapped I/O). Each vertex's adjacency list lives in its own 4 KiB
// page; visiting a cold vertex takes a demand-paging miss. The walk is
// data-dependent — the next reads are only known after the current page
// arrives — so the miss latency is squarely on the critical path, and the
// OSDP→HWDP latency cut translates almost 1:1 into end-to-end runtime.
package main

import (
	"encoding/binary"
	"fmt"

	"hwdp/internal/core"
	"hwdp/internal/kernel"
	"hwdp/internal/mmu"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
)

const (
	vertices = 6000
	degree   = 12
	memoryMB = 8 // far smaller than the 23 MiB graph: out-of-core
)

// neighbor derives a deterministic pseudo-random edge target.
func neighbor(v uint64, i int) uint64 {
	h := (v*1099511628211 + uint64(i) + 1) * 0x9e3779b97f4a7c15
	return h % vertices
}

// adjInit generates the adjacency page of vertex `page`.
func adjInit(page int, buf []byte) {
	binary.LittleEndian.PutUint32(buf[0:], degree)
	for i := 0; i < degree; i++ {
		binary.LittleEndian.PutUint64(buf[4+8*i:], neighbor(uint64(page), i))
	}
}

func bfs(scheme kernel.Scheme) (visited int, elapsed sim.Time, faults uint64) {
	cfg := core.DefaultConfig(scheme)
	cfg.MemoryBytes = memoryMB << 20
	cfg.Seed = 7
	sys := cfg.Build()
	base, _, err := sys.MapFile("graph.adj", vertices, adjInit, sys.FastFlags())
	if err != nil {
		panic(err)
	}
	th := sys.WorkloadThread(0)

	seen := make([]bool, vertices)
	queue := []uint64{0}
	seen[0] = true
	visited = 1
	buf := make([]byte, 4096)
	done := false

	var step func()
	step = func() {
		if len(queue) == 0 {
			done = true
			return
		}
		v := queue[0]
		queue = queue[1:]
		va := base + pagetable.VAddr(v)*4096
		// Read the adjacency page through the simulated VM (faulting it in
		// from the SSD if cold), then a little user compute per vertex.
		sys.K.Load(th, va, buf, func(r mmu.Result) {
			if r.Outcome == mmu.OutcomeBadAddr {
				panic("unmapped vertex")
			}
			d := binary.LittleEndian.Uint32(buf[0:])
			for i := 0; i < int(d); i++ {
				n := binary.LittleEndian.Uint64(buf[4+8*i:])
				if want := neighbor(v, i); n != want {
					panic(fmt.Sprintf("corrupt adjacency: v%d[%d]=%d want %d", v, i, n, want))
				}
				if !seen[n] {
					seen[n] = true
					visited++
					queue = append(queue, n)
				}
			}
			sys.CPU.UserExec(th.HW, 3000, step)
		})
	}
	step()
	sys.RunWhile(func() bool { return !done })
	ms := sys.MMU.Stats()
	// A hardware miss bounced for lack of a free page shows up in both
	// counters; count each miss once.
	return visited, sys.Eng.Now(), ms.HWMisses + ms.OSFaults - ms.HWBounced
}

func main() {
	fmt.Printf("Semi-external BFS: %d vertices x degree %d (%d MiB graph, %d MiB memory)\n\n",
		vertices, degree, vertices*4096/(1<<20), memoryMB)
	var times [2]sim.Time
	for i, scheme := range []kernel.Scheme{kernel.OSDP, kernel.HWDP} {
		v, t, f := bfs(scheme)
		fmt.Printf("%-8v visited %d vertices in %v (%d demand-paging misses)\n",
			scheme, v, t, f)
		times[i] = t
	}
	fmt.Printf("\nHWDP finishes the traversal %.1f%% faster.\n",
		100*(1-float64(times[1])/float64(times[0])))
}
