// Anonymous-memory scenario (the paper's Section V extension): a large
// heap-like anonymous mapping whose working set exceeds physical memory.
// First touches are zero-fills — the SMU recognizes the reserved
// first-touch LBA constant and installs a frame without any I/O — and
// dirty pages evicted under pressure are swapped out; refaults swap them
// back in through the same hardware path, with the swap LBA in the PTE.
package main

import (
	"encoding/binary"
	"fmt"

	"hwdp/internal/core"
	"hwdp/internal/kernel"
	"hwdp/internal/mmu"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
)

const (
	heapPages = 3000 // ~12 MiB of anonymous heap
	memMB     = 6    // under half of it fits
)

func run(scheme kernel.Scheme) (elapsed sim.Time, zeroFills, swapIns uint64, ok bool) {
	cfg := core.DefaultConfig(scheme)
	cfg.MemoryBytes = memMB << 20
	cfg.Seed = 11
	sys := cfg.Build()
	va, err := sys.K.MmapAnon(sys.Proc, 0, 0, heapPages,
		pagetable.Prot{Write: true, User: true}, true)
	if err != nil {
		panic(err)
	}
	th := sys.WorkloadThread(0)

	// Phase 1: write a counter into every page (all first touches).
	// Phase 2: read every page back and verify (many are swap-ins by now).
	buf := make([]byte, 8)
	phase := 1
	i := 0
	done := false
	ok = true
	var step func()
	step = func() {
		if i >= heapPages {
			if phase == 1 {
				phase, i = 2, 0
			} else {
				done = true
				return
			}
		}
		addr := va + pagetable.VAddr(i)*4096
		if phase == 1 {
			binary.LittleEndian.PutUint64(buf, uint64(i)*7+1)
			sys.K.Store(th, addr, buf, func(mmu.Result) {
				sys.CPU.UserExec(th.HW, 2000, func() { i++; step() })
			})
		} else {
			sys.K.Load(th, addr, buf, func(mmu.Result) {
				if got := binary.LittleEndian.Uint64(buf); got != uint64(i)*7+1 {
					fmt.Printf("  !! page %d corrupted across swap: %d\n", i, got)
					ok = false
				}
				sys.CPU.UserExec(th.HW, 2000, func() { i++; step() })
			})
		}
	}
	step()
	sys.RunWhile(func() bool { return !done })
	hwStats := sys.SMU.Stats()
	return sys.Eng.Now(), hwStats.AnonZeroFill, sys.Dev.Stats().Reads, ok
}

func main() {
	fmt.Printf("Anonymous heap: %d pages (%.0f MiB) on a %d MiB machine\n",
		heapPages, float64(heapPages)*4096/(1<<20), memMB)
	fmt.Println("write every page, then read every page back (swap-in storm):")
	fmt.Println()
	var times [2]sim.Time
	for i, scheme := range []kernel.Scheme{kernel.OSDP, kernel.HWDP} {
		t, zf, si, ok := run(scheme)
		status := "all pages verified"
		if !ok {
			status = "CORRUPTION"
		}
		fmt.Printf("%-8v %v  (hardware zero-fills: %d, device reads: %d) — %s\n",
			scheme, t, zf, si, status)
		times[i] = t
	}
	fmt.Printf("\nHWDP runs the heap workload %.1f%% faster: first touches cost\n",
		100*(1-float64(times[1])/float64(times[0])))
	fmt.Println("nanoseconds instead of a trap, and swap-ins skip the kernel I/O stack.")
}
