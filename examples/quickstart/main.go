// Quickstart: build one machine per demand-paging scheme, take a single
// cold page miss on each, and print the end-to-end latency — the paper's
// headline comparison in five lines of API.
package main

import (
	"fmt"

	"hwdp"
)

func main() {
	fmt.Println("One cold 4 KiB page miss on a Z-SSD, by demand-paging scheme:")
	var osdp, hw hwdp.Duration
	for _, scheme := range []hwdp.Scheme{hwdp.OSDP, hwdp.SWOnly, hwdp.HWDP} {
		sys := hwdp.New(hwdp.Config{
			Scheme:        scheme,
			MemoryMB:      32,
			Deterministic: true, // exact component latencies
		})
		lat, err := sys.ColdPageLatency()
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-8v %v\n", scheme, lat)
		switch scheme {
		case hwdp.OSDP:
			osdp = lat
		case hwdp.HWDP:
			hw = lat
		}
	}
	fmt.Printf("\nHWDP reduces the demand-paging latency by %.1f%% (paper: 37.0%% on FIO,\n",
		100*(1-float64(hw)/float64(osdp)))
	fmt.Println("~43% on the raw fault), by handling the miss in hardware: the pipeline")
	fmt.Println("stalls while the SMU fetches the block over NVMe — no exception, no")
	fmt.Println("context switch, no kernel I/O stack on the critical path.")
}
