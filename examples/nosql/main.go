// NoSQL server scenario: a RocksDB-style record store whose table file is
// memory-mapped with the paper's fast-mmap flag, serving a YCSB-C (read
// only, zipfian) workload with the dataset twice the size of memory — the
// exact deployment the paper's introduction motivates. The same run is
// repeated under OSDP and HWDP and the throughput gain reported.
package main

import (
	"fmt"

	"hwdp"
)

func main() {
	const (
		memMB   = 32
		keys    = 16384 // 64 MiB of 4 KiB records = 2x memory
		threads = 4
		ops     = 4000
	)
	fmt.Printf("YCSB-C on a %d-record store (2:1 dataset:memory), %d threads\n\n",
		keys, threads)

	run := func(scheme hwdp.Scheme) hwdp.YCSBResult {
		sys := hwdp.New(hwdp.Config{Scheme: scheme, MemoryMB: memMB, Seed: 42})
		res, err := sys.RunYCSB('C', threads, ops, keys)
		if err != nil {
			panic(err)
		}
		st := sys.Stats()
		fmt.Printf("%v:\n", scheme)
		fmt.Printf("  throughput   %.0f ops/s\n", res.Throughput)
		fmt.Printf("  mean latency %v\n", res.MeanLatency)
		fmt.Printf("  user IPC     %.2f\n", res.UserIPC)
		fmt.Printf("  page misses  hardware=%d, OS faults=%d\n", st.HWMisses, st.OSFaults)
		fmt.Printf("  memory       evictions=%d, kpted syncs=%d\n\n", st.Evictions, st.KptedSyncs)
		if res.Errors > 0 {
			panic("corrupt reads — data path broken")
		}
		return res
	}

	osdp := run(hwdp.OSDP)
	hw := run(hwdp.HWDP)
	fmt.Printf("HWDP throughput gain: +%.1f%% (paper: up to +27.3%% for YCSB-C)\n",
		100*(hw.Throughput/osdp.Throughput-1))
	fmt.Printf("HWDP user-IPC gain:   +%.1f%% (paper: up to +7.0%%)\n",
		100*(hw.UserIPC/osdp.UserIPC-1))
}
