// SMT co-scheduling scenario (the paper's Fig. 16): an I/O-bound FIO
// thread and a CPU-bound compute thread share the two hardware threads of
// one physical core. Under OSDP the FIO thread's kernel fault handling
// competes for the core's issue slots; under HWDP the FIO thread's
// pipeline *stalls* during misses, leaving the whole core to the compute
// thread — so both get faster.
package main

import (
	"fmt"

	"hwdp/internal/core"
	"hwdp/internal/kernel"
	"hwdp/internal/sim"
	"hwdp/internal/workload"
)

func main() {
	const durMS = 30
	fmt.Printf("FIO + compute kernel pinned to one physical core, %d ms:\n\n", durMS)

	type outcome struct {
		fioOps  uint64
		fioTput float64
		specIPC float64
	}
	run := func(scheme kernel.Scheme) outcome {
		cfg := core.DefaultConfig(scheme)
		cfg.MemoryBytes = 32 << 20
		cfg.Seed = 3
		sys := cfg.Build()
		fio, err := workload.SetupFIO(sys, "fio.dat", 16384, sys.FastFlags())
		if err != nil {
			panic(err)
		}
		spec := workload.SPECKernels(sys)[0] // mcf-like
		a, b := sys.SMTPair(0)
		rs := workload.RunMixed(sys, []workload.Assignment{
			{Th: a, W: fio},
			{Th: b, W: spec},
		}, workload.RunOptions{Duration: durMS * sim.Millisecond})
		return outcome{
			fioOps:  rs[0].Ops,
			fioTput: rs[0].Throughput(),
			specIPC: sys.CPU.Thread(1).Counters.UserIPC(),
		}
	}

	osdp := run(kernel.OSDP)
	hw := run(kernel.HWDP)
	fmt.Printf("  %-22s %12s %12s\n", "", "OSDP", "HWDP")
	fmt.Printf("  %-22s %12.0f %12.0f\n", "FIO throughput (op/s)", osdp.fioTput, hw.fioTput)
	fmt.Printf("  %-22s %12.2f %12.2f\n", "compute thread IPC", osdp.specIPC, hw.specIPC)
	fmt.Printf("\n  FIO speedup:        %.2fx   (paper: >1.72x)\n", hw.fioTput/osdp.fioTput)
	fmt.Printf("  compute IPC gain:   +%.1f%%  (paper: SPEC IPC up under HWDP)\n",
		100*(hw.specIPC/osdp.specIPC-1))
}
