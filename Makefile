# Standard developer entry points. CI runs the same targets, so a green
# `make check docs-check` locally means a green pipeline.

GO ?= go

.PHONY: all build test race bench docs-check fmt check

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -short -bench=. -benchtime=1x ./...

fmt:
	gofmt -w .

# docs-check enforces the documentation invariants: gofmt-clean sources,
# package docs and doc comments on every exported symbol, and no broken
# relative links in markdown. See cmd/docscheck.
docs-check:
	@fmtout="$$(gofmt -l .)"; \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi
	$(GO) run ./cmd/docscheck

check: build test docs-check
