# Standard developer entry points. CI runs the same targets, so a green
# `make check docs-check` locally means a green pipeline.

GO ?= go

.PHONY: all build test race bench bench-short bench-go sweep-check chaos-short engine-check ssd-check fleet-check docs-check fmt lint check

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the fixed-seed benchmark suite and writes BENCH_hwdp.json
# (ns/op, allocs/op, sim-events/sec, plus the pinned pre-optimization
# baseline). bench-short is the CI smoke variant. bench-go runs the raw
# go-test benchmarks once each as a compile-and-smoke check.
bench:
	$(GO) run ./cmd/hwdpbench -bench

bench-short:
	$(GO) run ./cmd/hwdpbench -bench -quick -lanes 8

bench-go:
	$(GO) test -short -bench=. -benchtime=1x ./...

# sweep-check regenerates every quick-mode figure/table through the
# parallel sweep scheduler with the race detector on — the end-to-end
# proof that concurrent units share no state. The cache is bypassed so
# every unit actually simulates; SWEEP_hwdp.json records per-unit
# status/duration and is uploaded as a CI artifact. See docs/SWEEP.md.
sweep-check:
	$(GO) run -race ./cmd/hwdpbench -all -quick -no-cache

# chaos-short runs the bounded chaos-pressure campaign under the race
# detector: oversubscription scenarios with fault storms, audited by the
# invariant watchdog; every scenario must finish with zero violations
# and zero leaked frames. CAMPAIGN_hwdp.json records the per-scenario
# degradation report and is uploaded as a CI artifact. See
# docs/PRESSURE.md.
chaos-short:
	$(GO) run -race ./cmd/hwdpbench -pressure -quick -no-cache -sweep-out CAMPAIGN_sweep.json

# engine-check runs the lane-engine equivalence battery (protocol unit
# tests, full-system lanes-vs-sequential output equivalence, the pinned
# per-lane event-stream digests), then repeats it under the race
# detector so the 8-lane rounds genuinely dispatch worker goroutines
# with -race watching. See docs/ENGINE.md.
ENGINE_TESTS = Lane|Group|Bucket|Lookahead|TieCross|SerialParallel
engine-check:
	$(GO) test -run '$(ENGINE_TESTS)' ./internal/sim ./internal/core .
	$(GO) test -race -run '$(ENGINE_TESTS)' ./internal/sim ./internal/core .

# ssd-check runs the modeled-SSD battery: the FTL/GC conservation
# property tests and checked-in fuzz seed corpora, the lanes-1-vs-8
# byte-equivalence pin, and the steady-state/GC-tail direction
# regressions — then repeats everything under the race detector. See
# docs/SSD.md.
SSD_TESTS = GCConservation|Precondition|Unmapped|WriteBuffer|Flush|Deterministic|MinLatency|Victim|Fuzz|ModeledSSD|ModeledBackend|SSDSteadyState|GCTailAblation|FingerprintCoversSSD
ssd-check:
	$(GO) test -run '$(SSD_TESTS)' ./internal/ssd/... ./internal/core ./internal/figures
	$(GO) test -race -run '$(SSD_TESTS)' ./internal/ssd/... ./internal/core ./internal/figures

# fleet-check runs the multi-tenant battery — the per-tenant counter
# conservation property (under QoS, engine lanes and fault storms), the
# noisy-neighbor isolation acceptance (victim p99.9 improves >= 2x with
# QoS on), and the -j/-lanes byte-equivalence pins — plain and under the
# race detector, then regenerates the CI-sized fleet figure so
# FLEET_hwdp.json is always a fresh artifact. See docs/FLEET.md.
fleet-check:
	$(GO) test ./internal/fleet/
	$(GO) test -race ./internal/fleet/
	$(GO) run ./cmd/hwdpbench -fleet -quick -no-cache -sweep-out FLEET_sweep.json

fmt:
	gofmt -w .

# lint runs the stock go vet analyzers plus the repo's own hwdplint suite
# (determinism, pool pairing, sim-time units, hot-path closure captures,
# status-switch exhaustiveness, and the interprocedural hotalloc/laneescape
# proofs over per-package callgraph facts). See docs/ANALYSIS.md for the
# analyzers and the //hwdp:ignore syntax. The wall-clock budget keeps the
# fact-driven vettool pass honest: blowing it means facts stopped caching
# (check the -V=full fingerprint) or an analyzer went superlinear.
LINT_BUDGET_SECS ?= 120
lint:
	@start=$$(date +%s); \
	$(GO) vet ./... && \
	$(GO) build -o bin/hwdplint ./cmd/hwdplint && \
	$(GO) vet -vettool=$(CURDIR)/bin/hwdplint ./... || exit $$?; \
	elapsed=$$(( $$(date +%s) - start )); \
	echo "lint wall-clock: $${elapsed}s (budget $(LINT_BUDGET_SECS)s)"; \
	if [ $$elapsed -gt $(LINT_BUDGET_SECS) ]; then \
		echo "lint exceeded its wall-clock budget"; exit 1; \
	fi

# docs-check enforces the documentation invariants: gofmt-clean sources,
# package docs and doc comments on every exported symbol, and no broken
# relative links in markdown. See cmd/docscheck.
docs-check:
	@fmtout="$$(gofmt -l .)"; \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi
	$(GO) run ./cmd/docscheck

check: build lint test docs-check
